module Graph = Mmfair_topology.Graph
module Obs = Mmfair_obs

type engine = [ `Auto | `Linear | `Bisection ]

type round = {
  increment : float;
  frozen : Network.receiver_id list;
  saturated_links : Graph.link_id list;
}

type result = { allocation : Allocation.t; rounds : round list }

let tol_for x = 1e-9 *. Stdlib.max 1.0 (Float.abs x)

(* The water-filling loop below works on the flat incidence index
   (Network.incidence): receivers are global ids, each link×session
   pair is a contiguous "cell" of [inc.link_cells], and all per-round
   state lives in prevalidated flat arrays so the hot loops do no
   bounds-checked record chasing and no per-call list allocation.

   Per-round work is restricted to links that still carry active
   receivers (the [active_links] compact set); when a receiver
   freezes, only the cells on its own data-path are updated, which
   keeps every link's linear usage model [const + slope·t] current
   incrementally instead of rescanning links × sessions × receivers
   each round. *)

type state = {
  net : Network.t;
  inc : Network.incidence;
  m : int; (* sessions *)
  n : int; (* receivers (global ids) *)
  nl : int; (* links *)
  cap : float array; (* capacity per link *)
  vfn : Redundancy_fn.t array; (* per session *)
  rho : float array; (* per session *)
  single_rate : bool array; (* per session *)
  weight : float array; (* per gid *)
  rates : float array; (* per gid *)
  active : bool array; (* per gid *)
  mutable n_active : int;
  (* per compact (link, session) cell of the incidence index *)
  cell_active : int array;
  cell_max_frozen : float array;
  cell_sum_frozen : float array;
  (* per link: the usage model u(t) = const + slope·t (linear engine) *)
  link_const : float array;
  link_slope : float array;
  link_active : int array; (* active receivers crossing the link *)
  ever_saturated : bool array;
  (* compact set of links with link_active > 0 *)
  active_links : int array;
  link_pos : int array; (* position in active_links, -1 once retired *)
  mutable n_active_links : int;
  touched_links : bool array option;
      (* Warm starts: the links the solved sessions cross.  Only these
         carry initialized cell/link aggregates, and only these
         constrain the solve — frozen usage elsewhere is t-independent
         and none of the solved sessions' business. *)
}

(* [warm], when given, pins part of the population before the first
   round: [(active0, rates0)] per global id.  The state is then built
   directly in its post-freeze shape — frozen aggregates, link models
   and the active-link set come out of one pass over the cells —
   instead of constructing the all-active state and re-freezing
   receivers one at a time (the warm start used to dominate small
   incremental re-solves).

   [touched] (warm starts only) masks the links the solved sessions
   cross.  Cell and link aggregates are initialized for those links
   only: no other link is ever read by the rounds (active receivers
   all belong to solved sessions, so untouched links retire before
   round one), which makes a restricted solve's setup proportional to
   the component's neighborhood, not the network — the difference
   between one batched re-solve and sixteen when a churn batch
   partitions into sixteen disjoint components. *)
let init_state ?warm ?touched net =
  let g = Network.graph net in
  let inc = Network.incidence net in
  let m = Network.session_count net in
  let n = inc.Network.n_receivers in
  let nl = Graph.link_count g in
  let cap = Array.init nl (Graph.capacity g) in
  let vfn = Array.init m (Network.vfn net) in
  let rho = Array.init m (Network.rho net) in
  let single_rate = Array.init m (fun i -> Network.session_type net i = Network.Single_rate) in
  let weight = Array.make (Stdlib.max n 1) 1.0 in
  for i = 0 to m - 1 do
    let w = (Network.session_spec net i).Network.weights in
    Array.blit w 0 weight inc.Network.session_first.(i) (Array.length w)
  done;
  let nc = inc.Network.n_cells in
  let link_row = inc.Network.link_row and cell_first = inc.Network.cell_first in
  let active, rates, n_active =
    match warm with
    | None -> (Array.make (Stdlib.max n 1) true, Array.make (Stdlib.max n 1) 0.0, n)
    | Some (active0, rates0) ->
        (* Ownership transfer: [run] builds these arrays fresh for
           each solve, so the state may mutate them in place. *)
        let na = ref 0 in
        for gid = 0 to n - 1 do
          if active0.(gid) then incr na
        done;
        (active0, rates0, !na)
  in
  let cell_active = Array.make (Stdlib.max nc 1) 0 in
  let cell_max_frozen = Array.make (Stdlib.max nc 1) 0.0 in
  let cell_sum_frozen = Array.make (Stdlib.max nc 1) 0.0 in
  (match warm with
  | None ->
      for c = 0 to nc - 1 do
        cell_active.(c) <- cell_first.(c + 1) - cell_first.(c)
      done
  | Some _ ->
      (* Warm-start hot path: indices come straight off the CSR, so
         skip the bounds checks like the incidence splice does.  With
         a [touched] mask only the solved sessions' links pay the
         pass. *)
      let link_cells = inc.Network.link_cells in
      let cells_of_link l =
        for c = link_row.(l) to link_row.(l + 1) - 1 do
          let lo = Array.unsafe_get cell_first c and hi = Array.unsafe_get cell_first (c + 1) in
          let n_act = ref 0 in
          let mx = ref 0.0 and sum = ref 0.0 in
          for p = lo to hi - 1 do
            let gid = Array.unsafe_get link_cells p in
            if Array.unsafe_get active gid then incr n_act
            else begin
              let a = Array.unsafe_get rates gid in
              if a > !mx then mx := a;
              sum := !sum +. a
            end
          done;
          Array.unsafe_set cell_active c !n_act;
          Array.unsafe_set cell_max_frozen c !mx;
          Array.unsafe_set cell_sum_frozen c !sum
        done
      in
      (match touched with
      | Some mask ->
          for l = 0 to nl - 1 do
            if Array.unsafe_get mask l then cells_of_link l
          done
      | None ->
          for l = 0 to nl - 1 do
            cells_of_link l
          done));
  let link_const = Array.make (Stdlib.max nl 1) 0.0 in
  let link_slope = Array.make (Stdlib.max nl 1) 0.0 in
  let link_active = Array.make (Stdlib.max nl 1) 0 in
  let model_link l =
    for c = link_row.(l) to link_row.(l + 1) - 1 do
      (match vfn.(inc.Network.cell_session.(c)) with
      | Redundancy_fn.Efficient ->
          if cell_active.(c) > 0 then link_slope.(l) <- link_slope.(l) +. 1.0
          else link_const.(l) <- link_const.(l) +. cell_max_frozen.(c)
      | Redundancy_fn.Scaled v ->
          if cell_active.(c) > 0 then link_slope.(l) <- link_slope.(l) +. v
          else link_const.(l) <- link_const.(l) +. (v *. cell_max_frozen.(c))
      | Redundancy_fn.Additive ->
          link_slope.(l) <- link_slope.(l) +. float_of_int cell_active.(c);
          link_const.(l) <- link_const.(l) +. cell_sum_frozen.(c)
      | Redundancy_fn.Custom _ -> ());
      link_active.(l) <- link_active.(l) + cell_active.(c)
    done
  in
  (match touched with
  | Some mask when warm <> None ->
      for l = 0 to nl - 1 do
        if Array.unsafe_get mask l then model_link l
      done
  | _ ->
      for l = 0 to nl - 1 do
        model_link l
      done);
  let active_links = Array.make (Stdlib.max nl 1) 0 in
  let link_pos = Array.make (Stdlib.max nl 1) (-1) in
  let n_active_links = ref 0 in
  for l = 0 to nl - 1 do
    if link_active.(l) > 0 then begin
      active_links.(!n_active_links) <- l;
      link_pos.(l) <- !n_active_links;
      incr n_active_links
    end
  done;
  {
    net;
    inc;
    m;
    n;
    nl;
    cap;
    vfn;
    rho;
    single_rate;
    weight;
    rates;
    active;
    n_active;
    cell_active;
    cell_max_frozen;
    cell_sum_frozen;
    link_const;
    link_slope;
    link_active;
    ever_saturated = Array.make (Stdlib.max nl 1) false;
    active_links;
    link_pos;
    n_active_links = !n_active_links;
    touched_links = (if warm = None then None else touched);
  }

(* (const, slope) contribution of compact cell [c] (session [i]) to
   its link's linear usage model — mirrors the reference engine's
   per-round classification, but evaluated only when the cell
   changes. *)
let cell_const st i c =
  match st.vfn.(i) with
  | Redundancy_fn.Efficient -> if st.cell_active.(c) > 0 then 0.0 else st.cell_max_frozen.(c)
  | Redundancy_fn.Scaled v -> if st.cell_active.(c) > 0 then 0.0 else v *. st.cell_max_frozen.(c)
  | Redundancy_fn.Additive -> st.cell_sum_frozen.(c)
  | Redundancy_fn.Custom _ -> 0.0

let cell_slope st i c =
  match st.vfn.(i) with
  | Redundancy_fn.Efficient -> if st.cell_active.(c) > 0 then 1.0 else 0.0
  | Redundancy_fn.Scaled v -> if st.cell_active.(c) > 0 then v else 0.0
  | Redundancy_fn.Additive -> float_of_int st.cell_active.(c)
  | Redundancy_fn.Custom _ -> 0.0

let retire_link st l =
  let p = st.link_pos.(l) in
  if p >= 0 then begin
    let last = st.n_active_links - 1 in
    let moved = st.active_links.(last) in
    st.active_links.(p) <- moved;
    st.link_pos.(moved) <- p;
    st.n_active_links <- last;
    st.link_pos.(l) <- -1
  end

(* Freeze one receiver at its current rate: O(|data-path|) — update
   only the cells the receiver's path crosses. *)
let freeze_gid st gid =
  st.active.(gid) <- false;
  st.n_active <- st.n_active - 1;
  let a = st.rates.(gid) in
  let i = (st.inc.Network.receiver_of_gid.(gid)).Network.session in
  let rr = st.inc.Network.recv_row in
  for p = rr.(gid) to rr.(gid + 1) - 1 do
    let l = st.inc.Network.recv_cells.(p) in
    let c = st.inc.Network.recv_cell_of.(p) in
    let oc = cell_const st i c and os = cell_slope st i c in
    st.cell_active.(c) <- st.cell_active.(c) - 1;
    if a > st.cell_max_frozen.(c) then st.cell_max_frozen.(c) <- a;
    st.cell_sum_frozen.(c) <- st.cell_sum_frozen.(c) +. a;
    st.link_const.(l) <- st.link_const.(l) +. (cell_const st i c -. oc);
    st.link_slope.(l) <- st.link_slope.(l) +. (cell_slope st i c -. os);
    st.link_active.(l) <- st.link_active.(l) - 1;
    if st.link_active.(l) = 0 then retire_link st l
  done

(* Session usage on one link at common normalized level [t]:
   allocation-free fold over the cell's receivers (a [Custom] function
   still materializes its rate list — it consumes one by construction). *)
let cell_usage_at st ~cell_lo ~cell_hi i t =
  let n = cell_hi - cell_lo in
  if n = 0 then 0.0
  else
    let rate_at j =
      let gid = st.inc.Network.link_cells.(cell_lo + j) in
      if st.active.(gid) then st.weight.(gid) *. t else st.rates.(gid)
    in
    match st.vfn.(i) with
    | Redundancy_fn.Efficient | Redundancy_fn.Scaled _ ->
        let mx = ref 0.0 in
        for j = 0 to n - 1 do
          let x = rate_at j in
          if x > !mx then mx := x
        done;
        (match st.vfn.(i) with
        | Redundancy_fn.Scaled k ->
            if k < 1.0 then invalid_arg "Allocator: Scaled factor must be >= 1";
            k *. !mx
        | _ -> !mx)
    | Redundancy_fn.Additive ->
        let s = ref 0.0 in
        for j = 0 to n - 1 do
          s := !s +. rate_at j
        done;
        !s
    | Redundancy_fn.Custom _ -> Redundancy_fn.apply_fold st.vfn.(i) ~n ~get:rate_at

let link_usage_at st ~link t =
  let inc = st.inc in
  let s = ref 0.0 in
  for c = inc.Network.link_row.(link) to inc.Network.link_row.(link + 1) - 1 do
    s :=
      !s
      +. cell_usage_at st ~cell_lo:inc.Network.cell_first.(c) ~cell_hi:inc.Network.cell_first.(c + 1)
           inc.Network.cell_session.(c) t
  done;
  !s

(* Linear engine round bound: the per-link (const, slope) pairs are
   already current, so this is one division per link that still
   carries active receivers. *)
let linear_bound st t_cur =
  let bound = ref infinity in
  for p = 0 to st.n_active_links - 1 do
    let l = st.active_links.(p) in
    if st.link_slope.(l) > 0.0 then begin
      let b = (st.cap.(l) -. st.link_const.(l)) /. st.link_slope.(l) in
      if b < !bound then bound := b
    end
  done;
  Stdlib.max !bound t_cur

let bisection_bound st t_cur rho_bound =
  (* Links with no active receiver have t-independent usage, so once
     they pass at [t_cur] they pass at every t ≥ t_cur: the search
     itself only re-evaluates links that still carry active
     receivers. *)
  let feasible_active t =
    let ok = ref true in
    let p = ref 0 in
    while !ok && !p < st.n_active_links do
      let l = st.active_links.(!p) in
      if link_usage_at st ~link:l t > st.cap.(l) +. tol_for st.cap.(l) then ok := false;
      incr p
    done;
    !ok
  in
  let feasible_all t =
    (* Restricted solves judge feasibility on the solved sessions'
       links only: usage elsewhere is all-frozen, t-independent, and
       no concern of this solve's — a stale pin overfilling a link the
       component never crosses must not clamp the component to zero. *)
    let check l ok = if link_usage_at st ~link:l t > st.cap.(l) +. tol_for st.cap.(l) then ok := false in
    let ok = ref true in
    (match st.touched_links with
    | Some mask ->
        for l = 0 to st.nl - 1 do
          if Array.unsafe_get mask l then check l ok
        done
    | None ->
        for l = 0 to st.nl - 1 do
          check l ok
        done);
    !ok
  in
  let max_cap = Array.fold_left Stdlib.max 0.0 st.cap in
  let min_weight = ref infinity in
  for gid = 0 to st.n - 1 do
    if st.active.(gid) then min_weight := Stdlib.min !min_weight st.weight.(gid)
  done;
  let weight_floor = if Float.is_finite !min_weight && !min_weight > 0.0 then !min_weight else 1.0 in
  let hi = Stdlib.min rho_bound (t_cur +. (max_cap /. weight_floor) +. 1.0) in
  if not (feasible_all t_cur) then t_cur
  else if feasible_active hi then hi
  else Mmfair_numerics.Bisect.sup_satisfying feasible_active t_cur hi

let solver_name = "Allocator"

(* The water-filling loop is instrumented with per-round probe events
   (Mmfair_obs.Probe): the round trace consumed by [max_min_trace] /
   [pp_trace] is reconstructed from the same event stream that
   external sinks (metrics registry, Chrome trace, JSONL) observe.
   When probes are disabled and no local [on_round] collector is
   passed, no per-round payload is built at all — the hot loop pays
   one flag check per round. *)
let run ?on_round ?partial engine net =
  (* Warm start (incremental re-solve): sessions outside the fairness
     component are pinned at caller-supplied rates before the first
     round.  The pinned rates are validated here and handed to
     [init_state], which builds the state directly in its post-freeze
     shape; the water-filling below then sees the outside world as a
     fixed background load, and the per-round scans only visit the
     component's sessions. *)
  let warm =
    match partial with
    | None -> None
    | Some (component, frozen_rates) ->
        let inc = Network.incidence net in
        let m = Network.session_count net in
        let n = inc.Network.n_receivers in
        if Array.length frozen_rates <> m then
          invalid_arg "Allocator.max_min_partial: frozen rates must cover every session";
        let in_component = Array.make m false in
        Array.iter
          (fun i ->
            if i < 0 || i >= m then
              invalid_arg (Printf.sprintf "Allocator.max_min_partial: unknown session %d" i);
            in_component.(i) <- true)
          component;
        let active0 = Array.make (Stdlib.max n 1) true in
        let rates0 = Array.make (Stdlib.max n 1) 0.0 in
        for i = 0 to m - 1 do
          if not in_component.(i) then begin
            let lo = inc.Network.session_first.(i) and hi = inc.Network.session_first.(i + 1) in
            if Array.length frozen_rates.(i) <> hi - lo then
              invalid_arg
                (Printf.sprintf "Allocator.max_min_partial: session %d frozen rate count mismatch" i);
            for gid = lo to hi - 1 do
              let r = frozen_rates.(i).(gid - lo) in
              if not (Float.is_finite r && r >= 0.0) then
                invalid_arg
                  (Printf.sprintf
                     "Allocator.max_min_partial: session %d has a negative or non-finite frozen rate" i);
              active0.(gid) <- false;
              rates0.(gid) <- r
            done
          end
        done;
        let nl = Graph.link_count (Network.graph net) in
        let mask = Array.make (Stdlib.max nl 1) false in
        let rr = inc.Network.recv_row and rc = inc.Network.recv_cells in
        Array.iter
          (fun i ->
            for gid = inc.Network.session_first.(i) to inc.Network.session_first.(i + 1) - 1 do
              for p = rr.(gid) to rr.(gid + 1) - 1 do
                mask.(rc.(p)) <- true
              done
            done)
          component;
        Some (component, active0, rates0, mask)
  in
  let st =
    init_state
      ?warm:(Option.map (fun (_, a, r, _) -> (a, r)) warm)
      ?touched:(Option.map (fun (_, _, _, mask) -> mask) warm)
      net
  in
  let all_linear = Array.for_all Redundancy_fn.is_linear st.vfn in
  let unit_weights = Network.all_weights_unit net in
  let use_linear =
    match engine with
    | `Linear ->
        if not all_linear then
          invalid_arg "Allocator.max_min: linear engine requires linear link-rate functions";
        if not unit_weights then
          invalid_arg "Allocator.max_min: linear engine requires unit weights";
        true
    | `Bisection -> false
    | `Auto -> all_linear && unit_weights
  in
  let session_first = st.inc.Network.session_first in
  let solve_sessions =
    match warm with None -> Array.init st.m Fun.id | Some (component, _, _, _) -> component
  in
  let n_solve = Array.length solve_sessions in
  let round_no = ref 0 in
  let last_slack = ref infinity in
  let t_cur = ref 0.0 in
  let guard = ref (st.n + st.nl + 2) in
  while st.n_active > 0 do
    (* One flag check per round: when nobody listens, the per-round
       trace payload (frozen list, saturated set) is never built. *)
    let want = Option.is_some on_round || Obs.Probe.enabled () in
    decr guard;
    incr round_no;
    if !guard < 0 then
      Solver_error.raise_error
        (Solver_error.stalled ~solver:solver_name ~vfns:st.vfn ~round:!round_no
           ~residual_slack:!last_slack);
    (* Largest normalized level t at which no active receiver's rate
       w·t exceeds its session's rho. *)
    let rho_bound = ref infinity in
    for si = 0 to n_solve - 1 do
      let i = solve_sessions.(si) in
      let rho = st.rho.(i) in
      if Float.is_finite rho then
        for gid = session_first.(i) to session_first.(i + 1) - 1 do
          if st.active.(gid) then rho_bound := Stdlib.min !rho_bound (rho /. st.weight.(gid))
        done
    done;
    let t_new =
      if use_linear then Stdlib.min (linear_bound st !t_cur) !rho_bound
      else bisection_bound st !t_cur !rho_bound
    in
    let t_new = Stdlib.max t_new !t_cur in
    (* Apply the increment to every active receiver. *)
    for si = 0 to n_solve - 1 do
      let i = solve_sessions.(si) in
      for gid = session_first.(i) to session_first.(i + 1) - 1 do
        if st.active.(gid) then st.rates.(gid) <- st.weight.(gid) *. t_new
      done
    done;
    (* Saturation sweep, restricted to links with active receivers:
       an all-frozen link's usage no longer changes, so it cannot
       newly saturate (and its saturation round already froze every
       receiver crossing it). *)
    let min_slack = ref infinity and min_slack_link = ref (-1) in
    for p = st.n_active_links - 1 downto 0 do
      let l = st.active_links.(p) in
      let u =
        if use_linear then st.link_const.(l) +. (st.link_slope.(l) *. t_new)
        else link_usage_at st ~link:l t_new
      in
      let slack = st.cap.(l) -. u in
      if slack <= tol_for st.cap.(l) then st.ever_saturated.(l) <- true;
      if slack < !min_slack then begin
        min_slack := slack;
        min_slack_link := l
      end
    done;
    last_slack := !min_slack;
    let saturated_set =
      if not want then []
      else begin
        let acc = ref [] in
        for l = st.nl - 1 downto 0 do
          if st.ever_saturated.(l) then acc := l :: !acc
        done;
        !acc
      end
    in
    let frozen_count = ref 0 in
    let frozen_evs = ref [] in
    let freeze gid =
      if st.active.(gid) then begin
        freeze_gid st gid;
        incr frozen_count;
        if want then begin
          let r = st.inc.Network.receiver_of_gid.(gid) in
          frozen_evs := (r.Network.session, r.Network.index, st.rates.(gid)) :: !frozen_evs
        end
      end
    in
    let on_saturated gid =
      let rr = st.inc.Network.recv_row in
      let hit = ref false in
      let p = ref rr.(gid) in
      let stop = rr.(gid + 1) in
      while (not !hit) && !p < stop do
        if st.ever_saturated.(st.inc.Network.recv_cells.(!p)) then hit := true;
        incr p
      done;
      !hit
    in
    (* Step 6: freeze receivers at rho or crossing a saturated link. *)
    for si = 0 to n_solve - 1 do
      let i = solve_sessions.(si) in
      let rho = st.rho.(i) in
      for gid = session_first.(i) to session_first.(i + 1) - 1 do
        if st.active.(gid) then
          if st.weight.(gid) *. t_new >= rho -. tol_for rho then begin
            st.rates.(gid) <- rho;
            freeze gid
          end
          else if on_saturated gid then freeze gid
      done
    done;
    (* Numerical fallback: bisection can stop a hair below saturation;
       force progress by freezing receivers on the tightest link. *)
    if !frozen_count = 0 then begin
      if !min_slack_link < 0 then begin
        (* Every slack comparison failed — usage is NaN somewhere.
           Name the first offending link for the report. *)
        let nan_link = ref None in
        for p = st.n_active_links - 1 downto 0 do
          let l = st.active_links.(p) in
          if not (Float.is_finite (link_usage_at st ~link:l t_new)) then nan_link := Some l
        done;
        Solver_error.raise_error
          (Solver_error.Stuck_link
             { solver = solver_name; round = !round_no; link = !nan_link; residual_slack = !min_slack })
      end;
      let l = !min_slack_link in
      let inc = st.inc in
      for p = inc.Network.cell_first.(inc.Network.link_row.(l))
           to inc.Network.cell_first.(inc.Network.link_row.(l + 1)) - 1 do
        freeze st.inc.Network.link_cells.(p)
      done
    end;
    (* Step 7: a single-rate session freezes as a unit. *)
    for si = 0 to n_solve - 1 do
      let i = solve_sessions.(si) in
      if st.single_rate.(i) then begin
        let any_frozen = ref false in
        for gid = session_first.(i) to session_first.(i + 1) - 1 do
          if not st.active.(gid) then any_frozen := true
        done;
        if !any_frozen then
          for gid = session_first.(i) to session_first.(i + 1) - 1 do
            freeze gid
          done
      end
    done;
    if want then begin
      let ev =
        {
          Obs.Events.solver = solver_name;
          round = !round_no;
          level = t_new;
          increment = t_new -. !t_cur;
          active = st.n_active;
          frozen = List.rev !frozen_evs;
          saturated_links = saturated_set;
          bottleneck_link = (if !min_slack_link >= 0 then Some !min_slack_link else None);
          residual_slack = !min_slack;
        }
      in
      Obs.Probe.round ev;
      match on_round with Some f -> f ev | None -> ()
    end;
    t_cur := t_new
  done;
  let rates =
    Array.init st.m (fun i ->
        Array.sub st.rates session_first.(i) (session_first.(i + 1) - session_first.(i)))
  in
  Allocation.make net rates

(* The round trace is a pure view of the probe stream: collect the
   events of one run and rebuild the classic [round] records. *)
let round_of_event (ev : Obs.Events.round) =
  {
    increment = ev.Obs.Events.increment;
    frozen =
      List.map (fun (s, i, _) -> { Network.session = s; Network.index = i }) ev.Obs.Events.frozen;
    saturated_links = ev.Obs.Events.saturated_links;
  }

let run_trace engine net =
  let events = ref [] in
  let allocation = run ~on_round:(fun ev -> events := ev :: !events) engine net in
  { allocation; rounds = List.rev_map round_of_event !events }

let max_min_trace ?(engine = `Auto) net = run_trace engine net
let max_min ?(engine = `Auto) net = run engine net

let max_min_partial ?(engine = `Auto) ~sessions ~frozen net = run ~partial:(sessions, frozen) engine net

let max_min_partial_result ?(engine = `Auto) ~sessions ~frozen net =
  Solver_error.protect ~solver:solver_name (fun () -> run ~partial:(sessions, frozen) engine net)

let max_min_trace_result ?(engine = `Auto) net =
  Solver_error.protect ~solver:solver_name (fun () -> run_trace engine net)

let max_min_result ?(engine = `Auto) net =
  Solver_error.protect ~solver:solver_name (fun () -> run engine net)

let pp_trace fmt { allocation; rounds } =
  List.iteri
    (fun b round ->
      Format.fprintf fmt "round %d: +%g" (b + 1) round.increment;
      (match round.saturated_links with
      | [] -> ()
      | ls ->
          Format.fprintf fmt "; saturated %s"
            (String.concat ", " (List.map (Printf.sprintf "l%d") ls)));
      (match round.frozen with
      | [] -> ()
      | rs ->
          Format.fprintf fmt "; froze %s"
            (String.concat ", "
               (List.map
                  (fun (r : Network.receiver_id) ->
                    Printf.sprintf "r%d,%d@%g" (r.Network.session + 1) (r.Network.index + 1)
                      (Allocation.rate allocation r))
                  rs)));
      Format.fprintf fmt "@.")
    rounds

let bottleneck_links alloc r =
  let net = Allocation.network alloc in
  List.filter (fun l -> Allocation.fully_utilized alloc l) (Network.data_path net r)
