(** Weighted max-min fairness — the paper's Section-5 extension.

    "We believe that many of our results can be directly applied to
    TCP-fairness by constructing a definition of max-min fairness
    where receiver rates are assigned weights (i.e., a receiver's rate
    is weighted by the inverse of round trip time)."

    With per-receiver weights [w_{i,k}] (see
    {!Network.session_spec.weights}), progressive filling raises the
    {e normalized} rates [a_{i,k}/w_{i,k}] together, so the allocator
    already computes the weighted max-min fair allocation; this module
    adds the weighted analogues of the analysis tools:

    - the normalized ordered vector (feeding the [≼_m] ordering, whose
      lemmas apply verbatim to normalized rates);
    - weighted same-path-receiver-fairness (equal {e normalized} rates
      on identical data-paths — the TCP-fairness criterion of
      Mahdavi & Floyd that Fairness Property 2 generalizes);
    - weighted fully-utilized-receiver-fairness (no receiver can grow
      without shrinking someone with a smaller normalized rate on a
      shared saturated link);
    - RTT helpers for building TCP-like weight assignments. *)

val normalized_vector : Allocation.t -> float array
(** Ascending [a_{i,k}/w_{i,k}] over all receivers — the vector the
    weighted max-min fair allocation maximizes under [≼_m]. *)

val weights_from_rtts : float array -> float array
(** [weights_from_rtts rtts] is the TCP-fairness weight assignment
    [1/rtt] (Section 5's proposal).  Raises [Invalid_argument] on a
    non-positive RTT. *)

type violation = {
  first : Network.receiver_id;
  second : Network.receiver_id;
  first_normalized : float;
  second_normalized : float;
}
(** A pair of same-path receivers whose normalized rates differ with
    neither pinned at its [ρ]. *)

val same_path_weighted_fair : ?eps:float -> Allocation.t -> violation list
(** Weighted Fairness Property 2: receivers with identical data-paths
    have equal normalized rates [a/w] unless the lower one sits at its
    session's [ρ].  With unit weights this is exactly
    {!Properties.same_path_receiver_fair} (up to witness format). *)

type unjustified = { receiver : Network.receiver_id }
(** A receiver below [ρ] with no saturated link on its path where its
    normalized rate is maximal. *)

val fully_utilized_weighted_fair : ?eps:float -> Allocation.t -> unjustified list
(** Weighted Fairness Property 1: each receiver is at [ρ_i] or crosses
    a fully utilized link on which no other receiver has a strictly
    larger normalized rate. *)

val holds_all : ?eps:float -> Allocation.t -> bool
(** Both weighted properties hold. *)
