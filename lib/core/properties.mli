(** Executable checkers for the paper's four fairness properties.

    Section 2.1 defines four desirable properties of an allocation,
    derived from the unicast max-min properties.  Each checker returns
    a report listing every violation with its witness, so failures are
    explainable (the paper's Figure-2 and Figure-4 discussions walk
    through exactly such witnesses).

    Tolerances: a link is "fully utilized" within a relative [eps]
    (default [1e-9]); rate comparisons use the same tolerance. *)

type fully_utilized_violation = {
  receiver : Network.receiver_id;  (** The receiver whose rate has no justifying bottleneck. *)
}
(** Fairness Property 1 violation: the receiver is below [ρ_i] yet no
    fully utilized link on its data-path carries only receivers with
    rates ≤ its own. *)

type same_path_violation = {
  first : Network.receiver_id;
  second : Network.receiver_id;
  first_rate : float;
  second_rate : float;
}
(** Fairness Property 2 violation: identical data-paths, different
    rates, and neither rate is explained by its session's [ρ]. *)

type per_receiver_link_violation = {
  receiver : Network.receiver_id;
      (** No fully utilized link on this receiver's data-path gives
          its session a maximal session link rate. *)
}
(** Fairness Property 3 violation. *)

type per_session_link_violation = {
  session : int;
      (** No fully utilized link anywhere on the session's data-path
          gives it a maximal session link rate, and not all its
          receivers sit at [ρ_i]. *)
}
(** Fairness Property 4 violation. *)

type report = {
  fully_utilized_receiver : fully_utilized_violation list;  (** FP 1. *)
  same_path_receiver : same_path_violation list;            (** FP 2. *)
  per_receiver_link : per_receiver_link_violation list;     (** FP 3. *)
  per_session_link : per_session_link_violation list;       (** FP 4. *)
}

val fully_utilized_receiver_fair : ?eps:float -> Allocation.t -> fully_utilized_violation list
(** Fairness Property 1 (fully-utilized-receiver-fairness): each
    receiver has [a_{i,k} = ρ_i] or a fully utilized link [l_j] on its
    data-path with [a_{i',k'} ≤ a_{i,k}] for every [r_{i',k'} ∈ R_j].
    Returns the violating receivers (empty = property holds). *)

val same_path_receiver_fair : ?eps:float -> Allocation.t -> same_path_violation list
(** Fairness Property 2 (same-path-receiver-fairness): any two
    receivers (of any sessions) whose data-paths traverse the same set
    of links have equal rates, unless the lower one sits at its
    session's [ρ]. *)

val per_receiver_link_fair : ?eps:float -> Allocation.t -> per_receiver_link_violation list
(** Fairness Property 3 (per-receiver-link-fairness): for each
    receiver, [a_{i,k} = ρ_i] or some fully utilized link [l_j] on its
    data-path has [u_{i',j} ≤ u_{i,j}] for every other session. *)

val per_session_link_fair : ?eps:float -> Allocation.t -> per_session_link_violation list
(** Fairness Property 4 (per-session-link-fairness): for each session,
    all receivers at [ρ_i] or some fully utilized link on the
    session's data-path has [u_{i',j} ≤ u_{i,j}] for every other
    session. *)

val check_all : ?eps:float -> Allocation.t -> report
(** All four checkers at once. *)

val holds_all : ?eps:float -> Allocation.t -> bool
(** [true] iff all four violation lists are empty — the conclusion of
    the paper's Theorem 1 for multi-rate max-min fair allocations. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable report, one line per violation, or "all four
    fairness properties hold". *)
