type t =
  | Invalid_input of { solver : string; what : string }
  | No_progress of { solver : string; round : int; residual_slack : float }
  | Stuck_link of {
      solver : string;
      round : int;
      link : Mmfair_topology.Graph.link_id option;
      residual_slack : float;
    }
  | Non_monotone_vfn of { solver : string; session : int; round : int }
  | Scheduler_failure of { solver : string; task : int; what : string }

exception Error of t

let solver = function
  | Invalid_input { solver; _ }
  | No_progress { solver; _ }
  | Stuck_link { solver; _ }
  | Non_monotone_vfn { solver; _ }
  | Scheduler_failure { solver; _ } ->
      solver

let to_string = function
  | Invalid_input { solver; what } -> Printf.sprintf "%s: invalid input: %s" solver what
  | No_progress { solver; round; residual_slack } ->
      Printf.sprintf "%s: no progress after round %d (residual slack %g)" solver round
        residual_slack
  | Stuck_link { solver; round; link; residual_slack } ->
      let where =
        match link with
        | Some l -> Printf.sprintf "link l%d has non-finite usage" l
        | None -> "no candidate link"
      in
      Printf.sprintf
        "%s: stuck at round %d: %s (residual slack %g); a session link-rate function likely \
         returned NaN"
        solver round where residual_slack
  | Non_monotone_vfn { solver; session; round } ->
      Printf.sprintf
        "%s: stalled at round %d; session %d uses a custom link-rate function that appears \
         non-monotone"
        solver round session
  | Scheduler_failure { solver; task; what } ->
      Printf.sprintf "%s: scheduler failed solve task %d: %s" solver task what

let pp fmt e = Format.pp_print_string fmt (to_string e)

let raise_error e = raise (Error e)

let of_exn ~solver = function
  | Error e -> Some e
  | Invalid_argument what | Failure what -> Some (Invalid_input { solver; what })
  | _ -> None

let protect ~solver f =
  match f () with
  | v -> Ok v
  | exception e -> ( match of_exn ~solver e with Some err -> Result.Error err | None -> raise e)

let stalled ~solver ~vfns ~round ~residual_slack =
  let non_monotone = ref (-1) in
  Array.iteri
    (fun i v -> if !non_monotone < 0 && not (Redundancy_fn.is_linear v) then non_monotone := i)
    vfns;
  if !non_monotone >= 0 then Non_monotone_vfn { solver; session = !non_monotone; round }
  else No_progress { solver; round; residual_slack }
