(** Choosing a single-rate session's rate by inter-receiver fairness.

    The paper's related work (Jiang, Ammar & Zegura, "Inter-Receiver
    Fairness", cited as [6]) asks: when a session {e must} be
    single-rate, which single rate treats its heterogeneous receivers
    most fairly?  Too low starves the fast receivers; too high is
    undeliverable to the slow ones (in our loss-free fluid model, a
    rate above a receiver's path capacity simply cannot be allocated
    feasibly, so the whole session is capped anyway — the interesting
    trade is against the {e other} sessions it squeezes).

    We score a candidate rate [r] by mean receiver satisfaction
    against the multi-rate ideal: receiver [k]'s satisfaction is
    [min(a_k, g_k)/g_k] where [g_k] is its rate in the max-min fair
    allocation of the network with the session made multi-rate, and
    [a_k] its rate when the session is single-rate with [ρ = r].
    Because a single-rate session's realized rate is [min(r,
    bottleneck)], sweeping [r] over the session's achievable range
    traces the whole trade-off; network-wide satisfaction (averaged
    over {e all} receivers) is reported alongside so the cost imposed
    on other sessions is visible. *)

type point = {
  rate : float;              (** Candidate [ρ] given to the session. *)
  realized : float;          (** The session's realized single rate. *)
  session_satisfaction : float;   (** Mean over the session's receivers. *)
  network_satisfaction : float;   (** Mean over every receiver in the network. *)
}

val sweep : Network.t -> session:int -> ?grid:int -> unit -> point list
(** [sweep net ~session] evaluates [grid] (default 24) candidate rates
    spanning (0, the session's best receiver's multi-rate rate].  The
    designated session is forced [Single_rate] with the candidate as
    [ρ]; all other sessions keep their types.  Raises
    [Invalid_argument] on an unknown session. *)

val optimal : Network.t -> session:int -> ?grid:int -> unit -> point
(** The sweep point with maximal session satisfaction (ties: larger
    realized rate). *)
