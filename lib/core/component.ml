module Graph = Mmfair_topology.Graph

(* Links whose slack could flip a freeze decision are treated as
   binding.  Wider than the solvers' 1e-9 working tolerance on
   purpose: a link within 1e-7 (relative) of saturation joins the
   coupling graph, so float drift between an incremental and a
   from-scratch solve stays well inside the differential gate. *)
let eps_bind = 1e-7

(* Beyond the member set, [parent] tracks which members were absorbed
   through a shared binding link (union-find, union-by-min so a
   group's root is its smallest session).  Disjoint groups are
   independent sub-problems: their restricted solves commute, which is
   what lets the batch engine hand each group to its own domain. *)
type t = {
  net : Network.t;
  in_comp : bool array; (* per session *)
  parent : int array; (* per session; meaningful for members *)
  mutable n_sessions : int;
}

let create net =
  let n = Network.session_count net in
  { net; in_comp = Array.make n false; parent = Array.init n (fun i -> i); n_sessions = 0 }

let network t = t.net
let mem t i = t.in_comp.(i)
let cardinal t = t.n_sessions
let is_empty t = t.n_sessions = 0
let is_full t = t.n_sessions = Array.length t.in_comp

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri < rj then t.parent.(rj) <- ri else if rj < ri then t.parent.(ri) <- rj

let fill t =
  let n = Array.length t.in_comp in
  Array.fill t.in_comp 0 n true;
  Array.fill t.parent 0 n 0;
  t.n_sessions <- n

let sessions t =
  let out = Array.make t.n_sessions 0 in
  let k = ref 0 in
  Array.iteri
    (fun i inside ->
      if inside then begin
        out.(!k) <- i;
        incr k
      end)
    t.in_comp;
  out

let groups t =
  (* Ascending iteration meets each group at its smallest session,
     which union-by-min makes the root: buckets come out keyed and
     ordered by root, members ascending within. *)
  let buckets = Hashtbl.create 16 in
  let roots = ref [] in
  Array.iteri
    (fun i inside ->
      if inside then
        let r = find t i in
        match Hashtbl.find_opt buckets r with
        | None ->
            Hashtbl.add buckets r (ref [ i ]);
            roots := r :: !roots
        | Some members -> members := i :: !members)
    t.in_comp;
  List.rev_map (fun r -> Array.of_list (List.rev !(Hashtbl.find buckets r))) !roots

let receiver_count t =
  let n = ref 0 in
  Array.iteri
    (fun i inside ->
      if inside then
        n := !n + Array.length (Network.session_spec t.net i).Network.receivers)
    t.in_comp;
  !n

(* Per-link binding test, lazy and memoized: 0 unknown / 1 binding /
   2 slack.  Capacities come from the allocation's own network, so a
   pre-surgery allocation is judged against pre-surgery capacities. *)
let binding alloc =
  let g = Network.graph (Allocation.network alloc) in
  let cache = Array.make (Stdlib.max (Graph.link_count g) 1) 0 in
  fun l ->
    match cache.(l) with
    | 1 -> true
    | 2 -> false
    | _ ->
        let c = Graph.capacity g l in
        let b = Allocation.link_rate alloc l >= c -. (eps_bind *. Stdlib.max 1.0 c) in
        cache.(l) <- (if b then 1 else 2);
        b

let add t i =
  if not t.in_comp.(i) then begin
    t.in_comp.(i) <- true;
    t.n_sessions <- t.n_sessions + 1
  end

(* Grow by session [i] and everything reachable from it over binding
   links, stack-based.  Sessions met across a binding link are
   unioned with the session being expanded — also when already
   members, which is how separately-seeded groups merge on contact. *)
let absorb t ~binding i =
  let stack = ref [ i ] in
  add t i;
  while
    match !stack with
    | [] -> false
    | s :: rest ->
        stack := rest;
        List.iter
          (fun l ->
            if binding l then
              List.iter
                (fun (r : Network.receiver_id) ->
                  let j = r.Network.session in
                  if not t.in_comp.(j) then begin
                    add t j;
                    union t s j;
                    stack := j :: !stack
                  end
                  else union t s j)
                (Network.all_on_link t.net ~link:l))
          (Network.session_links t.net s);
        true
  do
    ()
  done

let absorb_link t ~binding l =
  if binding l then
    List.iter
      (fun (r : Network.receiver_id) -> absorb t ~binding r.Network.session)
      (Network.all_on_link t.net ~link:l)

(* Shared scan: links on the given sessions' paths that are binding
   and carry both a [member] and a non-[member] receiver. *)
let boundary_scan t ~binding ~member iter_sessions =
  let inc = Network.incidence t.net in
  let nl = Graph.link_count (Network.graph t.net) in
  let seen = Array.make (Stdlib.max nl 1) false in
  let boundary = ref [] in
  (* A boundary link carries at least one member receiver, so only
     links on the member sessions' paths can qualify: enumerate those
     straight off the receiver CSR instead of scanning every link. *)
  iter_sessions (fun i ->
      for gid = inc.Network.session_first.(i) to inc.Network.session_first.(i + 1) - 1 do
        for p = inc.Network.recv_row.(gid) to inc.Network.recv_row.(gid + 1) - 1 do
          let l = inc.Network.recv_cells.(p) in
          if not seen.(l) then begin
            seen.(l) <- true;
            if binding l then begin
              (* Straight off the CSR: does the saturated link carry
                 both member and frozen receivers? *)
              let has_in = ref false and has_out = ref false in
              for q = inc.Network.cell_first.(inc.Network.link_row.(l))
                   to inc.Network.cell_first.(inc.Network.link_row.(l + 1)) - 1 do
                let r = inc.Network.receiver_of_gid.(inc.Network.link_cells.(q)) in
                if member r.Network.session then has_in := true else has_out := true
              done;
              if !has_in && !has_out then boundary := l :: !boundary
            end
          end
        done
      done);
  !boundary

let boundary_links t ~binding =
  boundary_scan t ~binding
    ~member:(fun s -> t.in_comp.(s))
    (fun f -> Array.iteri (fun i inside -> if inside then f i) t.in_comp)

let group_boundary_links t ~binding group =
  if Array.length group = 0 then []
  else begin
    let root = find t group.(0) in
    boundary_scan t ~binding
      ~member:(fun s -> t.in_comp.(s) && find t s = root)
      (fun f -> Array.iter f group)
  end
