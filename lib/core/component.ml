module Graph = Mmfair_topology.Graph

(* Links whose slack could flip a freeze decision are treated as
   binding.  Wider than the solvers' 1e-9 working tolerance on
   purpose: a link within 1e-7 (relative) of saturation joins the
   coupling graph, so float drift between an incremental and a
   from-scratch solve stays well inside the differential gate. *)
let eps_bind = 1e-7

(* Beyond the member set, [parent] tracks which members were absorbed
   through a shared binding link (union-find, union-by-min so a
   group's root is its smallest session).  Disjoint groups are
   independent sub-problems: their restricted solves commute, which is
   what lets the batch engine hand each group to its own domain. *)
type t = {
  net : Network.t;
  in_comp : bool array; (* per session *)
  parent : int array; (* per session; meaningful for members only,
                         initialized in [add] — [create] leaves the
                         array memset-zero so building a component
                         costs no O(sessions) closure loop *)
  mutable members : int list; (* the member set, insertion order *)
  mutable n_sessions : int;
  mutable n_recv : int; (* total receivers across members *)
}

let create net =
  let n = Network.session_count net in
  {
    net;
    in_comp = Array.make n false;
    parent = Array.make n 0;
    members = [];
    n_sessions = 0;
    n_recv = 0;
  }

let network t = t.net
let mem t i = t.in_comp.(i)
let cardinal t = t.n_sessions
let is_empty t = t.n_sessions = 0
let is_full t = t.n_sessions = Array.length t.in_comp

(* Every enumeration below walks the member list (sorted ascending for
   determinism) instead of the per-session flag array: the churn
   engine's components are tiny next to the network, and an O(sessions)
   sweep per batch is exactly what the incremental path must avoid. *)
let sorted_members t = List.sort Stdlib.compare t.members

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri < rj then t.parent.(rj) <- ri else if rj < ri then t.parent.(ri) <- rj

let fill t =
  let n = Array.length t.in_comp in
  Array.fill t.in_comp 0 n true;
  Array.fill t.parent 0 n 0;
  t.members <- List.init n Fun.id;
  t.n_sessions <- n;
  t.n_recv <- Network.receiver_count t.net

let sessions t = Array.of_list (sorted_members t)

let groups t =
  (* Ascending iteration meets each group at its smallest session,
     which union-by-min makes the root: buckets come out keyed and
     ordered by root, members ascending within. *)
  let buckets = Hashtbl.create 16 in
  let roots = ref [] in
  List.iter
    (fun i ->
      let r = find t i in
      match Hashtbl.find_opt buckets r with
      | None ->
          Hashtbl.add buckets r (ref [ i ]);
          roots := r :: !roots
      | Some members -> members := i :: !members)
    (sorted_members t);
  List.rev_map (fun r -> Array.of_list (List.rev !(Hashtbl.find buckets r))) !roots

let receiver_count t = t.n_recv

(* Per-link binding test, lazy and memoized.  The memo is sparse (a
   hash table, not an O(links) array): the churn engine builds one of
   these per group per boundary-fixed-point iteration, and only
   component-adjacent links are ever queried, so a dense cache would
   put an O(links) allocation on every disjoint group of every batch.
   Capacities come from the allocation's own network, so a
   pre-surgery allocation is judged against pre-surgery capacities. *)
let binding alloc =
  let g = Network.graph (Allocation.network alloc) in
  let cache = Hashtbl.create 64 in
  fun l ->
    match Hashtbl.find_opt cache l with
    | Some b -> b
    | None ->
        let c = Graph.capacity g l in
        let b = Allocation.link_rate alloc l >= c -. (eps_bind *. Stdlib.max 1.0 c) in
        Hashtbl.add cache l b;
        b

let add t i =
  if not t.in_comp.(i) then begin
    t.in_comp.(i) <- true;
    t.parent.(i) <- i;
    t.members <- i :: t.members;
    t.n_sessions <- t.n_sessions + 1;
    t.n_recv <-
      t.n_recv + Array.length (Network.session_spec t.net i).Network.receivers
  end

(* Grow by session [i] and everything reachable from it over binding
   links, stack-based.  Sessions met across a binding link are
   unioned with the session being expanded — also when already
   members, which is how separately-seeded groups merge on contact. *)
let absorb t ~binding i =
  let stack = ref [ i ] in
  add t i;
  while
    match !stack with
    | [] -> false
    | s :: rest ->
        stack := rest;
        List.iter
          (fun l ->
            if binding l then
              List.iter
                (fun (r : Network.receiver_id) ->
                  let j = r.Network.session in
                  if not t.in_comp.(j) then begin
                    add t j;
                    union t s j;
                    stack := j :: !stack
                  end
                  else union t s j)
                (Network.all_on_link t.net ~link:l))
          (Network.session_links t.net s);
        true
  do
    ()
  done

let absorb_link t ~binding l =
  if binding l then
    List.iter
      (fun (r : Network.receiver_id) -> absorb t ~binding r.Network.session)
      (Network.all_on_link t.net ~link:l)

(* Shared scan: links on the given sessions' paths that are binding
   and carry both a [member] and a non-[member] receiver. *)
let boundary_scan t ~binding ~member iter_sessions =
  let inc = Network.incidence t.net in
  (* Sparse visited set: the scan only touches the member sessions'
     path links, so a dense O(links) array per call would dominate the
     per-group cost on large topologies. *)
  let seen = Hashtbl.create 64 in
  let boundary = ref [] in
  (* A boundary link carries at least one member receiver, so only
     links on the member sessions' paths can qualify: enumerate those
     straight off the receiver CSR instead of scanning every link. *)
  iter_sessions (fun i ->
      for gid = inc.Network.session_first.(i) to inc.Network.session_first.(i + 1) - 1 do
        for p = inc.Network.recv_row.(gid) to inc.Network.recv_row.(gid + 1) - 1 do
          let l = inc.Network.recv_cells.(p) in
          if not (Hashtbl.mem seen l) then begin
            Hashtbl.add seen l ();
            if binding l then begin
              (* Straight off the CSR: does the saturated link carry
                 both member and frozen receivers? *)
              let has_in = ref false and has_out = ref false in
              for q = inc.Network.cell_first.(inc.Network.link_row.(l))
                   to inc.Network.cell_first.(inc.Network.link_row.(l + 1)) - 1 do
                let r = inc.Network.receiver_of_gid.(inc.Network.link_cells.(q)) in
                if member r.Network.session then has_in := true else has_out := true
              done;
              if !has_in && !has_out then boundary := l :: !boundary
            end
          end
        done
      done);
  !boundary

let boundary_links t ~binding =
  boundary_scan t ~binding
    ~member:(fun s -> t.in_comp.(s))
    (fun f -> List.iter f (sorted_members t))

let group_boundary_links t ~binding group =
  if Array.length group = 0 then []
  else begin
    let root = find t group.(0) in
    boundary_scan t ~binding
      ~member:(fun s -> t.in_comp.(s) && find t s = root)
      (fun f -> Array.iter f group)
  end
