(** The Tzeng–Siu single-rate max-min definition (the paper's [18]).

    Prior multicast max-min work (Tzeng & Siu, "On Max-Min Fair
    Congestion Control for Multicast ABR Service in ATM") defines
    fairness over {e session} rates: every session transmits at one
    rate to all its receivers, and the vector of session rates is
    max-min fair.  The paper's Definition 1 instead compares {e
    receiver} rates, and notes "it is easy to show that the max-min
    fair allocation in a single-rate network is identical under both
    definitions".  This module implements the session-rate definition
    independently (its own water-filling over sessions) so that claim
    is machine-checked rather than assumed. *)

val max_min_session_rates : Network.t -> float array
(** The Tzeng–Siu allocation: one rate per session, computed by
    progressive filling over sessions (a session freezes when any link
    on its data-path saturates or its [ρ_i] is reached).  Requires
    every session to be single-rate and every link-rate function
    linear-efficient; raises [Invalid_argument] otherwise, and
    {!Solver_error.Error} if the water-filling stalls.  Weights are
    ignored (the definition predates weighted variants). *)

val max_min_session_rates_result : Network.t -> (float array, Solver_error.t) result
(** Typed-error variant of {!max_min_session_rates}: contract
    violations and stalls come back as [Error] instead of raising. *)

val to_allocation : Network.t -> float array -> Allocation.t
(** Expand session rates to the receiver-rate allocation (each
    receiver gets its session's rate). *)

val agrees_with_receiver_definition : ?eps:float -> Network.t -> bool
(** The paper's equivalence claim on this network: the Tzeng–Siu
    allocation equals the Appendix-A allocator's receiver-based
    single-rate max-min allocation within [eps] (default [1e-7]). *)
