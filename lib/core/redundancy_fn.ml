type t =
  | Efficient
  | Scaled of float
  | Additive
  | Custom of string * (float list -> float)

let max_rate rates = List.fold_left Stdlib.max 0.0 rates

let apply v rates =
  match rates with
  | [] -> 0.0
  | _ -> (
      match v with
      | Efficient -> max_rate rates
      | Scaled k ->
          if k < 1.0 then invalid_arg "Redundancy_fn.apply: Scaled factor must be >= 1";
          k *. max_rate rates
      | Additive -> List.fold_left ( +. ) 0.0 rates
      | Custom (_, f) ->
          (* Float.max, not the polymorphic max: the clamp to the
             efficient lower bound must not swallow a NaN coming out
             of a broken custom function — the solvers detect the NaN
             and report a typed error instead of silently treating the
             session as efficient. *)
          Float.max (f rates) (max_rate rates))

let apply_fold v ~n ~get =
  if n = 0 then 0.0
  else
    match v with
    | Efficient ->
        let mx = ref 0.0 in
        for j = 0 to n - 1 do
          let x = get j in
          if x > !mx then mx := x
        done;
        !mx
    | Scaled k ->
        if k < 1.0 then invalid_arg "Redundancy_fn.apply_fold: Scaled factor must be >= 1";
        let mx = ref 0.0 in
        for j = 0 to n - 1 do
          let x = get j in
          if x > !mx then mx := x
        done;
        k *. !mx
    | Additive ->
        let s = ref 0.0 in
        for j = 0 to n - 1 do
          s := !s +. get j
        done;
        !s
    | Custom (_, f) ->
        (* A [Custom] function consumes a list by construction, so this
           shape alone must materialize the rates. *)
        let rates = List.init n get in
        Float.max (f rates) (max_rate rates)

let name = function
  | Efficient -> "efficient"
  | Scaled k -> Printf.sprintf "scaled(%g)" k
  | Additive -> "additive"
  | Custom (n, _) -> n

let dominates hi lo rates = apply hi rates >= apply lo rates -. 1e-12

let is_linear = function
  | Efficient | Scaled _ | Additive -> true
  | Custom _ -> false

let pp fmt v = Format.pp_print_string fmt (name v)
