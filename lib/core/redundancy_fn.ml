type t =
  | Efficient
  | Scaled of float
  | Additive
  | Custom of string * (float list -> float)

let max_rate rates = List.fold_left Stdlib.max 0.0 rates

let apply v rates =
  match rates with
  | [] -> 0.0
  | _ -> (
      match v with
      | Efficient -> max_rate rates
      | Scaled k ->
          if k < 1.0 then invalid_arg "Redundancy_fn.apply: Scaled factor must be >= 1";
          k *. max_rate rates
      | Additive -> List.fold_left ( +. ) 0.0 rates
      | Custom (_, f) -> Stdlib.max (f rates) (max_rate rates))

let name = function
  | Efficient -> "efficient"
  | Scaled k -> Printf.sprintf "scaled(%g)" k
  | Additive -> "additive"
  | Custom (n, _) -> n

let dominates hi lo rates = apply hi rates >= apply lo rates -. 1e-12

let is_linear = function
  | Efficient | Scaled _ | Additive -> true
  | Custom _ -> false

let pp fmt v = Format.pp_print_string fmt (name v)
