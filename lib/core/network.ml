module Graph = Mmfair_topology.Graph
module Routing = Mmfair_topology.Routing

type session_type = Single_rate | Multi_rate

type session_spec = {
  sender : Graph.node;
  receivers : Graph.node array;
  session_type : session_type;
  rho : float;
  vfn : Redundancy_fn.t;
  weights : float array;
}

let session ?(session_type = Multi_rate) ?(rho = infinity) ?(vfn = Redundancy_fn.Efficient)
    ?weights ~sender ~receivers () =
  let weights =
    match weights with
    | Some w -> Array.copy w
    | None -> Array.make (Array.length receivers) 1.0
  in
  { sender; receivers; session_type; rho; vfn; weights }

type receiver_id = { session : int; index : int }

type incidence = {
  n_receivers : int;
  session_first : int array;
  receiver_of_gid : receiver_id array;
  link_session_row : int array;
  link_cells : int array;
  recv_row : int array;
  recv_cells : int array;
}

type t = {
  graph : Graph.t;
  sessions : session_spec array;
  paths : Routing.path array array; (* paths.(i).(k) = data-path of r_{i,k} *)
  (* on_link.(j).(i) = receivers of session i crossing link j, reversed order *)
  on_link : receiver_id list array array;
  session_link_union : Graph.link_id list array; (* session data-path *)
  inc : incidence;
  (* bit (gid * n_links + l) set iff receiver [gid] crosses link [l] *)
  crosses_bits : Bytes.t;
  all_on_link_cache : receiver_id list array;
}

(* Flat CSR views of the routing, shared by every [with_*] variant
   (they never re-route): global receiver ids are session-major, links
   are grouped session-by-session within each link's cell range. *)
let build_incidence n_links paths =
  let m = Array.length paths in
  let session_first = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    session_first.(i + 1) <- session_first.(i) + Array.length paths.(i)
  done;
  let n_receivers = session_first.(m) in
  let receiver_of_gid = Array.make (Stdlib.max n_receivers 1) { session = 0; index = 0 } in
  let recv_row = Array.make (n_receivers + 1) 0 in
  Array.iteri
    (fun i per_receiver ->
      Array.iteri
        (fun k path ->
          let gid = session_first.(i) + k in
          receiver_of_gid.(gid) <- { session = i; index = k };
          recv_row.(gid + 1) <- List.length path)
        per_receiver)
    paths;
  for gid = 0 to n_receivers - 1 do
    recv_row.(gid + 1) <- recv_row.(gid + 1) + recv_row.(gid)
  done;
  let total = recv_row.(n_receivers) in
  let recv_cells = Array.make (Stdlib.max total 1) 0 in
  let link_session_row = Array.make ((n_links * m) + 1) 0 in
  Array.iteri
    (fun i per_receiver ->
      Array.iteri
        (fun k path ->
          let gid = session_first.(i) + k in
          let cursor = ref recv_row.(gid) in
          List.iter
            (fun l ->
              recv_cells.(!cursor) <- l;
              incr cursor;
              link_session_row.((l * m) + i + 1) <- link_session_row.((l * m) + i + 1) + 1)
            path)
        per_receiver)
    paths;
  for c = 0 to (n_links * m) - 1 do
    link_session_row.(c + 1) <- link_session_row.(c + 1) + link_session_row.(c)
  done;
  let link_cells = Array.make (Stdlib.max total 1) 0 in
  let cursor = Array.sub link_session_row 0 (Stdlib.max (n_links * m) 1) in
  (* Fill session-major, receiver-index ascending, so each cell lists
     its receivers in the same order as [receivers_on_link]. *)
  Array.iteri
    (fun i per_receiver ->
      Array.iteri
        (fun k path ->
          let gid = session_first.(i) + k in
          List.iter
            (fun l ->
              let c = (l * m) + i in
              link_cells.(cursor.(c)) <- gid;
              cursor.(c) <- cursor.(c) + 1)
            path)
        per_receiver)
    paths;
  { n_receivers; session_first; receiver_of_gid; link_session_row; link_cells; recv_row; recv_cells }

let build_crosses_bits n_links inc =
  let bits = Bytes.make (((inc.n_receivers * n_links) + 7) / 8) '\000' in
  for gid = 0 to inc.n_receivers - 1 do
    for p = inc.recv_row.(gid) to inc.recv_row.(gid + 1) - 1 do
      let bit = (gid * n_links) + inc.recv_cells.(p) in
      Bytes.unsafe_set bits (bit lsr 3)
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits (bit lsr 3)) lor (1 lsl (bit land 7))))
    done
  done;
  bits

let validate_and_route graph sessions =
  let n_links = Graph.link_count graph in
  (* Graph.add_link already rejects NaN/zero/negative capacities; an
     infinite capacity would make the water-filling bounds meaningless
     (slack arithmetic produces NaN), so reject it here. *)
  for l = 0 to n_links - 1 do
    let c = Graph.capacity graph l in
    if not (Float.is_finite c) then
      invalid_arg (Printf.sprintf "Network.make: link %d has non-finite capacity %g" l c)
  done;
  let paths =
    Array.mapi
      (fun i s ->
        if Array.length s.receivers = 0 then
          invalid_arg (Printf.sprintf "Network.make: session %d has no receivers" i);
        if not (s.rho > 0.0) then
          invalid_arg (Printf.sprintf "Network.make: session %d has rho <= 0" i);
        (match s.vfn with
        | Redundancy_fn.Scaled k when not (Float.is_finite k && k >= 1.0) ->
            invalid_arg
              (Printf.sprintf "Network.make: session %d has Scaled redundancy factor %g (need a finite factor >= 1)" i k)
        | _ -> ());
        if Array.length s.weights <> Array.length s.receivers then
          invalid_arg (Printf.sprintf "Network.make: session %d weight count mismatch" i);
        Array.iter
          (fun w ->
            if not (w > 0.0) then
              invalid_arg (Printf.sprintf "Network.make: session %d has a non-positive weight" i);
            if not (Float.is_finite w) then
              invalid_arg (Printf.sprintf "Network.make: session %d has a non-finite weight" i))
          s.weights;
        if s.sender < 0 || s.sender >= Graph.node_count graph then
          invalid_arg (Printf.sprintf "Network.make: session %d sender on unknown node %d" i s.sender);
        (if s.session_type = Single_rate && Array.length s.weights > 0 then begin
           let w0 = s.weights.(0) in
           if Array.exists (fun w -> w <> w0) s.weights then
             invalid_arg
               (Printf.sprintf "Network.make: single-rate session %d has unequal weights" i)
         end);
        (* The paper's restriction on τ: no two members of one session
           share a node. *)
        let members = Array.append [| s.sender |] s.receivers in
        let sorted = Array.copy members in
        Array.sort compare sorted;
        for k = 1 to Array.length sorted - 1 do
          if sorted.(k) = sorted.(k - 1) then
            invalid_arg
              (Printf.sprintf "Network.make: session %d maps two members to node %d" i sorted.(k))
        done;
        let from_sender = Routing.paths_from graph s.sender in
        Array.mapi
          (fun k r ->
            if r < 0 || r >= Graph.node_count graph then
              invalid_arg (Printf.sprintf "Network.make: session %d receiver %d on unknown node" i k);
            match from_sender.(r) with
            | Some p -> p
            | None ->
                invalid_arg
                  (Printf.sprintf "Network.make: session %d receiver %d unreachable" i k))
          s.receivers)
      sessions
  in
  let on_link = Array.init n_links (fun _ -> Array.make (Array.length sessions) []) in
  Array.iteri
    (fun i per_receiver ->
      Array.iteri
        (fun k path ->
          List.iter (fun l -> on_link.(l).(i) <- { session = i; index = k } :: on_link.(l).(i)) path)
        per_receiver)
    paths;
  (* Restore receiver-index order within each R_{i,j}. *)
  Array.iter (fun per_session -> Array.iteri (fun i l -> per_session.(i) <- List.rev l) per_session) on_link;
  let session_link_union =
    Array.map
      (fun per_receiver ->
        Array.fold_left (fun acc p -> List.rev_append p acc) [] per_receiver
        |> List.sort_uniq compare)
      paths
  in
  let inc = build_incidence n_links paths in
  let crosses_bits = build_crosses_bits n_links inc in
  let all_on_link_cache =
    Array.map (fun per_session -> List.concat (Array.to_list per_session)) on_link
  in
  { graph; sessions; paths; on_link; session_link_union; inc; crosses_bits; all_on_link_cache }

let make graph sessions = validate_and_route graph (Array.copy sessions)

let graph t = t.graph
let session_count t = Array.length t.sessions
let receiver_count t = Array.fold_left (fun acc s -> acc + Array.length s.receivers) 0 t.sessions

let check_session t i name =
  if i < 0 || i >= Array.length t.sessions then
    invalid_arg (Printf.sprintf "Network.%s: unknown session %d" name i)

let session_spec t i =
  check_session t i "session_spec";
  t.sessions.(i)

let session_type t i = (session_spec t i).session_type

let weight t (r : receiver_id) =
  check_session t r.session "weight";
  let spec = t.sessions.(r.session) in
  if r.index < 0 || r.index >= Array.length spec.weights then
    invalid_arg "Network.weight: unknown receiver";
  spec.weights.(r.index)

let all_weights_unit t =
  Array.for_all (fun s -> Array.for_all (fun w -> w = 1.0) s.weights) t.sessions

let with_weights t w =
  if Array.length w <> Array.length t.sessions then
    invalid_arg "Network.with_weights: session count mismatch";
  let sessions =
    Array.mapi
      (fun i s ->
        if Array.length w.(i) <> Array.length s.receivers then
          invalid_arg "Network.with_weights: receiver count mismatch";
        Array.iter
          (fun x ->
            if not (x > 0.0) then invalid_arg "Network.with_weights: non-positive weight";
            if not (Float.is_finite x) then invalid_arg "Network.with_weights: non-finite weight")
          w.(i);
        (if s.session_type = Single_rate && Array.length w.(i) > 0 then begin
           let w0 = w.(i).(0) in
           if Array.exists (fun x -> x <> w0) w.(i) then
             invalid_arg "Network.with_weights: unequal weights in single-rate session"
         end);
        { s with weights = Array.copy w.(i) })
      t.sessions
  in
  { t with sessions }
let rho t i = (session_spec t i).rho
let vfn t i = (session_spec t i).vfn

let receivers_of_session t i =
  check_session t i "receivers_of_session";
  Array.init (Array.length t.sessions.(i).receivers) (fun k -> { session = i; index = k })

let all_receivers t =
  Array.concat (List.init (session_count t) (fun i -> receivers_of_session t i))

let check_receiver t r name =
  check_session t r.session name;
  if r.index < 0 || r.index >= Array.length t.sessions.(r.session).receivers then
    invalid_arg (Printf.sprintf "Network.%s: unknown receiver %d of session %d" name r.index r.session)

let data_path t r =
  check_receiver t r "data_path";
  t.paths.(r.session).(r.index)

let session_links t i =
  check_session t i "session_links";
  t.session_link_union.(i)

let receivers_on_link t ~session ~link =
  check_session t session "receivers_on_link";
  if link < 0 || link >= Graph.link_count t.graph then
    invalid_arg "Network.receivers_on_link: unknown link";
  t.on_link.(link).(session)

let all_on_link t ~link =
  if link < 0 || link >= Graph.link_count t.graph then invalid_arg "Network.all_on_link: unknown link";
  t.all_on_link_cache.(link)

let incidence t = t.inc

let receiver_gid t r =
  check_receiver t r "receiver_gid";
  t.inc.session_first.(r.session) + r.index

let crosses t r l =
  check_receiver t r "crosses";
  l >= 0
  && l < Graph.link_count t.graph
  &&
  let bit = ((t.inc.session_first.(r.session) + r.index) * Graph.link_count t.graph) + l in
  Char.code (Bytes.unsafe_get t.crosses_bits (bit lsr 3)) land (1 lsl (bit land 7)) <> 0

let is_unicast t i = Array.length (session_spec t i).receivers = 1

let with_session_types t types =
  if Array.length types <> Array.length t.sessions then
    invalid_arg "Network.with_session_types: length mismatch";
  let sessions = Array.mapi (fun i s -> { s with session_type = types.(i) }) t.sessions in
  { t with sessions }

let with_vfns t vfns =
  if Array.length vfns <> Array.length t.sessions then invalid_arg "Network.with_vfns: length mismatch";
  let sessions = Array.mapi (fun i s -> { s with vfn = vfns.(i) }) t.sessions in
  { t with sessions }

let without_receiver t r =
  check_receiver t r "without_receiver";
  let s = t.sessions.(r.session) in
  if Array.length s.receivers <= 1 then
    invalid_arg "Network.without_receiver: session would become empty";
  let receivers =
    Array.of_list
      (List.filteri (fun k _ -> k <> r.index) (Array.to_list s.receivers))
  in
  let weights =
    Array.of_list (List.filteri (fun k _ -> k <> r.index) (Array.to_list s.weights))
  in
  let sessions =
    Array.mapi (fun i s' -> if i = r.session then { s' with receivers; weights } else s') t.sessions
  in
  validate_and_route t.graph sessions

let pp fmt t =
  Array.iteri
    (fun i s ->
      let ty = match s.session_type with Single_rate -> "S" | Multi_rate -> "M" in
      Format.fprintf fmt "S%d [%s, rho=%g, v=%a]: X@%d -> " (i + 1) ty s.rho Redundancy_fn.pp s.vfn
        s.sender;
      Array.iteri
        (fun k r ->
          let path = t.paths.(i).(k) in
          Format.fprintf fmt "%sr%d,%d@%d via {%s}" (if k > 0 then "; " else "") (i + 1) (k + 1) r
            (String.concat "," (List.map (Printf.sprintf "l%d") path)))
        s.receivers;
      Format.fprintf fmt "@.")
    t.sessions
