module Graph = Mmfair_topology.Graph
module Routing = Mmfair_topology.Routing

type session_type = Single_rate | Multi_rate

type session_spec = {
  sender : Graph.node;
  receivers : Graph.node array;
  session_type : session_type;
  rho : float;
  vfn : Redundancy_fn.t;
  weights : float array;
}

let session ?(session_type = Multi_rate) ?(rho = infinity) ?(vfn = Redundancy_fn.Efficient)
    ?weights ~sender ~receivers () =
  let weights =
    match weights with
    | Some w -> Array.copy w
    | None -> Array.make (Array.length receivers) 1.0
  in
  { sender; receivers; session_type; rho; vfn; weights }

type receiver_id = { session : int; index : int }

type incidence = {
  n_receivers : int;
  n_cells : int;
  session_first : int array;
  receiver_of_gid : receiver_id array;
  link_row : int array;
  cell_session : int array;
  cell_first : int array;
  link_cells : int array;
  recv_row : int array;
  recv_cells : int array;
  recv_cell_of : int array;
}

type t = {
  graph : Graph.t;
  sessions : session_spec array;
  paths : Routing.path array array; (* paths.(i).(k) = data-path of r_{i,k} *)
  inc : incidence;
  (* bit (gid * n_links + l) set iff receiver [gid] crosses link [l].
     Lazy: only [crosses] (the reference allocator, tests) reads it,
     and the churn surgeries would otherwise pay a full rebuild of the
     bitset on every event. *)
  crosses_bits : Bytes.t Lazy.t;
}

(* Flat CSR views of the routing, shared by every [with_*] variant
   (they never re-route): global receiver ids are session-major.  The
   link→receiver direction is {e compact}: only the (link, session)
   pairs some receiver actually crosses get a cell, so every pass here
   — and the allocator's warm-up — is linear in the routed path length
   plus [n_links], never in [n_links * sessions]. *)
let build_incidence n_links paths =
  let m = Array.length paths in
  let session_first = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    session_first.(i + 1) <- session_first.(i) + Array.length paths.(i)
  done;
  let n_receivers = session_first.(m) in
  let receiver_of_gid = Array.make (Stdlib.max n_receivers 1) { session = 0; index = 0 } in
  let recv_row = Array.make (n_receivers + 1) 0 in
  Array.iteri
    (fun i per_receiver ->
      Array.iteri
        (fun k path ->
          let gid = session_first.(i) + k in
          receiver_of_gid.(gid) <- { session = i; index = k };
          recv_row.(gid + 1) <- List.length path)
        per_receiver)
    paths;
  for gid = 0 to n_receivers - 1 do
    recv_row.(gid + 1) <- recv_row.(gid + 1) + recv_row.(gid)
  done;
  let total = recv_row.(n_receivers) in
  let recv_cells = Array.make (Stdlib.max total 1) 0 in
  (* Pass 1: flatten paths into [recv_cells]; count each link's compact
     cells with a last-session-seen mark (receivers of one session are
     contiguous in gid order, so a repeat visit of (l, i) is exactly
     [last_seen.(l) = i]). *)
  let last_seen = Array.make (Stdlib.max n_links 1) (-1) in
  let link_ncells = Array.make (Stdlib.max n_links 1) 0 in
  for gid = 0 to n_receivers - 1 do
    let i = receiver_of_gid.(gid).session in
    let cursor = ref recv_row.(gid) in
    let k = receiver_of_gid.(gid).index in
    List.iter
      (fun l ->
        recv_cells.(!cursor) <- l;
        incr cursor;
        if last_seen.(l) <> i then begin
          last_seen.(l) <- i;
          link_ncells.(l) <- link_ncells.(l) + 1
        end)
      paths.(i).(k)
  done;
  let link_row = Array.make (n_links + 1) 0 in
  for l = 0 to n_links - 1 do
    link_row.(l + 1) <- link_row.(l) + link_ncells.(l)
  done;
  let n_cells = link_row.(n_links) in
  let cell_session = Array.make (Stdlib.max n_cells 1) 0 in
  let cell_first = Array.make (n_cells + 1) 0 in
  let recv_cell_of = Array.make (Stdlib.max total 1) 0 in
  (* Pass 2: assign compact cell ids (ascending sessions within each
     link, because gids — hence sessions — ascend), tag every path
     entry with its cell, and count cell sizes. *)
  Array.fill last_seen 0 (Array.length last_seen) (-1);
  let cell_cursor = Array.sub link_row 0 (Stdlib.max n_links 1) in
  let cell_at = Array.make (Stdlib.max n_links 1) 0 in
  for gid = 0 to n_receivers - 1 do
    let i = receiver_of_gid.(gid).session in
    for p = recv_row.(gid) to recv_row.(gid + 1) - 1 do
      let l = recv_cells.(p) in
      if last_seen.(l) <> i then begin
        last_seen.(l) <- i;
        let c = cell_cursor.(l) in
        cell_cursor.(l) <- c + 1;
        cell_session.(c) <- i;
        cell_at.(l) <- c
      end;
      let c = cell_at.(l) in
      recv_cell_of.(p) <- c;
      cell_first.(c + 1) <- cell_first.(c + 1) + 1
    done
  done;
  for c = 0 to n_cells - 1 do
    cell_first.(c + 1) <- cell_first.(c + 1) + cell_first.(c)
  done;
  (* Pass 3: fill each cell's receivers, gid-ascending. *)
  let link_cells = Array.make (Stdlib.max total 1) 0 in
  let fill_cursor = Array.sub cell_first 0 (Stdlib.max n_cells 1) in
  for gid = 0 to n_receivers - 1 do
    for p = recv_row.(gid) to recv_row.(gid + 1) - 1 do
      let c = recv_cell_of.(p) in
      link_cells.(fill_cursor.(c)) <- gid;
      fill_cursor.(c) <- fill_cursor.(c) + 1
    done
  done;
  {
    n_receivers;
    n_cells;
    session_first;
    receiver_of_gid;
    link_row;
    cell_session;
    cell_first;
    link_cells;
    recv_row;
    recv_cells;
    recv_cell_of;
  }

(* --- incremental incidence surgery ---------------------------------- *)

(* Splice one receiver out of / into the CSR without the full
   [build_incidence] rebuild.  Both directions are O(total path length
   + n_links + n_cells) with straight array blits and one compaction
   pass — a handful of microseconds on the bench topologies, versus
   the three routing-order passes of a rebuild.  The dynamic engine's
   Join/Leave surgery sits on this path, and its speedup over a
   from-scratch solve is bounded by exactly this constant.

   Invariants preserved (the same ones [build_incidence] establishes,
   checked field-by-field against a scratch rebuild in the test
   suite): gids are session-major, a link's cells ascend by session,
   a cell's member gids ascend, and [recv_cell_of] tags every path
   position with its compact cell. *)

(* Remove global receiver [g0]: every gid above it shifts down one,
   each cell on its path loses a member, and a cell whose only member
   it was dies (later cell ids compact down). *)
let incidence_remove inc ~g0 =
  let n = inc.n_receivers in
  let m = Array.length inc.session_first - 1 in
  let n_links = Array.length inc.link_row - 1 in
  let i = inc.receiver_of_gid.(g0).session in
  let lo = inc.recv_row.(g0) and hi = inc.recv_row.(g0 + 1) in
  let plen = hi - lo in
  let total = inc.recv_row.(n) in
  let total' = total - plen in
  (* Which cells shrink, and which die (single-member cells on the
     removed path)?  [dead_before] then maps surviving old cell ids to
     their compacted ids. *)
  let loses = Array.make (Stdlib.max inc.n_cells 1) false in
  let dead_before = Array.make (inc.n_cells + 1) 0 in
  for p = lo to hi - 1 do
    let c = inc.recv_cell_of.(p) in
    loses.(c) <- true;
    if inc.cell_first.(c + 1) - inc.cell_first.(c) = 1 then dead_before.(c + 1) <- 1
  done;
  for c = 1 to inc.n_cells do
    dead_before.(c) <- dead_before.(c) + dead_before.(c - 1)
  done;
  let n_cells' = inc.n_cells - dead_before.(inc.n_cells) in
  let session_first = Array.make (m + 1) 0 in
  for j = 0 to m do
    session_first.(j) <- inc.session_first.(j) - (if inc.session_first.(j) > g0 then 1 else 0)
  done;
  let receiver_of_gid = Array.make (Stdlib.max (n - 1) 1) { session = 0; index = 0 } in
  Array.blit inc.receiver_of_gid 0 receiver_of_gid 0 g0;
  for g = g0 to n - 2 do
    let r = inc.receiver_of_gid.(g + 1) in
    receiver_of_gid.(g) <- (if r.session = i then { r with index = r.index - 1 } else r)
  done;
  let recv_row = Array.make n 0 in
  for g = 0 to n - 1 do
    recv_row.(g) <- (if g <= g0 then inc.recv_row.(g) else inc.recv_row.(g + 1) - plen)
  done;
  let recv_cells = Array.make (Stdlib.max total' 1) 0 in
  Array.blit inc.recv_cells 0 recv_cells 0 lo;
  Array.blit inc.recv_cells hi recv_cells lo (total - hi);
  (* Surviving path positions can only reference surviving cells: a
     cell dies exactly when its whole membership was the dropped span. *)
  (* The remap and compaction loops below run over every path position
     and cell on each churn event — unsafe accesses, with every index
     bounded by the CSR invariants (and the whole result checked
     field-by-field against a scratch rebuild in the test suite). *)
  let recv_cell_of = Array.make (Stdlib.max total' 1) 0 in
  for p = 0 to lo - 1 do
    let c = Array.unsafe_get inc.recv_cell_of p in
    Array.unsafe_set recv_cell_of p (c - Array.unsafe_get dead_before c)
  done;
  for p = lo to total' - 1 do
    let c = Array.unsafe_get inc.recv_cell_of (p + plen) in
    Array.unsafe_set recv_cell_of p (c - Array.unsafe_get dead_before c)
  done;
  (* One compaction sweep rebuilds the link→cell→gid direction: cells
     keep their relative (hence session-ascending) order, members drop
     [g0] and shift the gids above it. *)
  let link_row = Array.make (n_links + 1) 0 in
  let cell_session = Array.make (Stdlib.max n_cells' 1) 0 in
  let cell_first = Array.make (n_cells' + 1) 0 in
  let link_cells = Array.make (Stdlib.max total' 1) 0 in
  let wc = ref 0 and wp = ref 0 in
  for l = 0 to n_links - 1 do
    link_row.(l) <- !wc;
    for c = inc.link_row.(l) to inc.link_row.(l + 1) - 1 do
      let clo = Array.unsafe_get inc.cell_first c
      and chi = Array.unsafe_get inc.cell_first (c + 1) in
      if not (Array.unsafe_get loses c && chi - clo = 1) then begin
        Array.unsafe_set cell_session !wc (Array.unsafe_get inc.cell_session c);
        Array.unsafe_set cell_first !wc !wp;
        for p = clo to chi - 1 do
          let g = Array.unsafe_get inc.link_cells p in
          if g <> g0 then begin
            Array.unsafe_set link_cells !wp (if g > g0 then g - 1 else g);
            incr wp
          end
        done;
        incr wc
      end
    done
  done;
  link_row.(n_links) <- !wc;
  cell_first.(n_cells') <- !wp;
  {
    n_receivers = n - 1;
    n_cells = n_cells';
    session_first;
    receiver_of_gid;
    link_row;
    cell_session;
    cell_first;
    link_cells;
    recv_row;
    recv_cells;
    recv_cell_of;
  }

(* Find the compact cell of (link, session), if any: the link's cells
   list sessions in ascending order and there are few of them, so a
   linear scan beats a binary search at realistic fan-in. *)
let find_cell inc ~session ~link =
  let lo = inc.link_row.(link) and hi = inc.link_row.(link + 1) in
  let found = ref (-1) in
  let c = ref lo in
  while !found < 0 && !c < hi do
    let s = inc.cell_session.(!c) in
    if s = session then found := !c else if s > session then c := hi else incr c
  done;
  !found

(* Append a receiver to session [i] with data path [path].  The
   newcomer takes gid [session_first.(i + 1)] (last of its session),
   so inside any existing (link, i) cell it appends after the cell's
   members — all smaller session-[i] gids — and a link the session did
   not cross gets a cell born at the session-ascending slot. *)
let incidence_add inc ~session:i ~path =
  let n = inc.n_receivers in
  let m = Array.length inc.session_first - 1 in
  let n_links = Array.length inc.link_row - 1 in
  let g0 = inc.session_first.(i + 1) in
  let plen = List.length path in
  let total = inc.recv_row.(n) in
  let total' = total + plen in
  (* Per path link: does (link, i) already exist (gains the newcomer)
     or is it born?  A born cell's insertion slot is the old cell id it
     lands in front of; [bump] prefix-sums those slots into the old→new
     cell id shift. *)
  let touch = Array.make (Stdlib.max n_links 1) 0 in
  let bump = Array.make (inc.n_cells + 1) 0 in
  List.iter
    (fun l ->
      if find_cell inc ~session:i ~link:l >= 0 then touch.(l) <- 1
      else begin
        touch.(l) <- 2;
        let slot = ref inc.link_row.(l) in
        while !slot < inc.link_row.(l + 1) && inc.cell_session.(!slot) < i do
          incr slot
        done;
        (* The birth is emitted before old cell [slot], so that cell
           shifts too: mark the slot itself. *)
        bump.(!slot) <- bump.(!slot) + 1
      end)
    path;
  for c = 1 to inc.n_cells do
    bump.(c) <- bump.(c) + bump.(c - 1)
  done;
  let n_born = bump.(inc.n_cells) in
  let n_cells' = inc.n_cells + n_born in
  let session_first = Array.make (m + 1) 0 in
  for j = 0 to m do
    session_first.(j) <- inc.session_first.(j) + (if j > i then 1 else 0)
  done;
  let receiver_of_gid = Array.make (n + 1) { session = 0; index = 0 } in
  Array.blit inc.receiver_of_gid 0 receiver_of_gid 0 g0;
  receiver_of_gid.(g0) <- { session = i; index = g0 - inc.session_first.(i) };
  Array.blit inc.receiver_of_gid g0 receiver_of_gid (g0 + 1) (n - g0);
  let lo = inc.recv_row.(g0) in
  let recv_row = Array.make (n + 2) 0 in
  for g = 0 to g0 do
    recv_row.(g) <- inc.recv_row.(g)
  done;
  for g = g0 + 1 to n + 1 do
    recv_row.(g) <- inc.recv_row.(g - 1) + plen
  done;
  let recv_cells = Array.make (Stdlib.max total' 1) 0 in
  Array.blit inc.recv_cells 0 recv_cells 0 lo;
  List.iteri (fun j l -> recv_cells.(lo + j) <- l) path;
  Array.blit inc.recv_cells lo recv_cells (lo + plen) (total - lo);
  (* One merge sweep rebuilds the link→cell→gid direction: existing
     members' gids at or above [g0] shift up, gaining cells append the
     newcomer, born cells slot in at session order.  The sweep also
     records each path link's cell id ([cell_of_link]) — the write
     cursor is the ground truth for new cell ids, which sidesteps the
     corner where two births land on the same insertion slot (end of
     one link's range, start of the next). *)
  let link_row = Array.make (n_links + 1) 0 in
  let cell_session = Array.make (Stdlib.max n_cells' 1) 0 in
  let cell_first = Array.make (n_cells' + 1) 0 in
  let link_cells = Array.make (Stdlib.max total' 1) 0 in
  let cell_of_link = Array.make (Stdlib.max n_links 1) (-1) in
  let wc = ref 0 and wp = ref 0 in
  for l = 0 to n_links - 1 do
    link_row.(l) <- !wc;
    let pending_birth = ref (touch.(l) = 2) in
    for c = inc.link_row.(l) to inc.link_row.(l + 1) - 1 do
      if !pending_birth && Array.unsafe_get inc.cell_session c > i then begin
        pending_birth := false;
        cell_of_link.(l) <- !wc;
        Array.unsafe_set cell_session !wc i;
        Array.unsafe_set cell_first !wc !wp;
        Array.unsafe_set link_cells !wp g0;
        incr wp;
        incr wc
      end;
      Array.unsafe_set cell_session !wc (Array.unsafe_get inc.cell_session c);
      Array.unsafe_set cell_first !wc !wp;
      for p = Array.unsafe_get inc.cell_first c to Array.unsafe_get inc.cell_first (c + 1) - 1 do
        let g = Array.unsafe_get inc.link_cells p in
        Array.unsafe_set link_cells !wp (if g >= g0 then g + 1 else g);
        incr wp
      done;
      if touch.(l) = 1 && Array.unsafe_get inc.cell_session c = i then begin
        cell_of_link.(l) <- !wc;
        Array.unsafe_set link_cells !wp g0;
        incr wp
      end;
      incr wc
    done;
    if !pending_birth then begin
      cell_of_link.(l) <- !wc;
      Array.unsafe_set cell_session !wc i;
      Array.unsafe_set cell_first !wc !wp;
      Array.unsafe_set link_cells !wp g0;
      incr wp;
      incr wc
    end
  done;
  link_row.(n_links) <- !wc;
  cell_first.(n_cells') <- !wp;
  let recv_cell_of = Array.make (Stdlib.max total' 1) 0 in
  for p = 0 to lo - 1 do
    let c = Array.unsafe_get inc.recv_cell_of p in
    Array.unsafe_set recv_cell_of p (c + Array.unsafe_get bump c)
  done;
  List.iteri (fun j l -> recv_cell_of.(lo + j) <- cell_of_link.(l)) path;
  for p = lo + plen to total' - 1 do
    let c = Array.unsafe_get inc.recv_cell_of (p - plen) in
    Array.unsafe_set recv_cell_of p (c + Array.unsafe_get bump c)
  done;
  {
    n_receivers = n + 1;
    n_cells = n_cells';
    session_first;
    receiver_of_gid;
    link_row;
    cell_session;
    cell_first;
    link_cells;
    recv_row;
    recv_cells;
    recv_cell_of;
  }

let build_crosses_bits n_links inc =
  let bits = Bytes.make (((inc.n_receivers * n_links) + 7) / 8) '\000' in
  for gid = 0 to inc.n_receivers - 1 do
    for p = inc.recv_row.(gid) to inc.recv_row.(gid + 1) - 1 do
      let bit = (gid * n_links) + inc.recv_cells.(p) in
      Bytes.unsafe_set bits (bit lsr 3)
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits (bit lsr 3)) lor (1 lsl (bit land 7))))
    done
  done;
  bits

(* Per-session validation (everything but routing).  Factored out so
   the incremental surgeries ([with_receiver]/[without_receiver]) can
   re-validate only the touched session instead of the whole network. *)
let validate_session graph i s =
  if Array.length s.receivers = 0 then
    invalid_arg (Printf.sprintf "Network.make: session %d has no receivers" i);
  if not (s.rho > 0.0) then
    invalid_arg (Printf.sprintf "Network.make: session %d has rho <= 0" i);
  (match s.vfn with
  | Redundancy_fn.Scaled k when not (Float.is_finite k && k >= 1.0) ->
      invalid_arg
        (Printf.sprintf "Network.make: session %d has Scaled redundancy factor %g (need a finite factor >= 1)" i k)
  | _ -> ());
  if Array.length s.weights <> Array.length s.receivers then
    invalid_arg (Printf.sprintf "Network.make: session %d weight count mismatch" i);
  Array.iter
    (fun w ->
      if not (w > 0.0) then
        invalid_arg (Printf.sprintf "Network.make: session %d has a non-positive weight" i);
      if not (Float.is_finite w) then
        invalid_arg (Printf.sprintf "Network.make: session %d has a non-finite weight" i))
    s.weights;
  if s.sender < 0 || s.sender >= Graph.node_count graph then
    invalid_arg (Printf.sprintf "Network.make: session %d sender on unknown node %d" i s.sender);
  (if s.session_type = Single_rate && Array.length s.weights > 0 then begin
     let w0 = s.weights.(0) in
     if Array.exists (fun w -> w <> w0) s.weights then
       invalid_arg (Printf.sprintf "Network.make: single-rate session %d has unequal weights" i)
   end);
  (* The paper's restriction on τ: no two members of one session
     share a node. *)
  let members = Array.append [| s.sender |] s.receivers in
  let sorted = Array.copy members in
  Array.sort compare sorted;
  for k = 1 to Array.length sorted - 1 do
    if sorted.(k) = sorted.(k - 1) then
      invalid_arg (Printf.sprintf "Network.make: session %d maps two members to node %d" i sorted.(k))
  done

(* One BFS from the session's sender routes all its receivers. *)
let route_session_tree graph i s from_sender =
  Array.mapi
    (fun k r ->
      if r < 0 || r >= Graph.node_count graph then
        invalid_arg (Printf.sprintf "Network.make: session %d receiver %d on unknown node" i k);
      match from_sender.(r) with
      | Some p -> p
      | None -> invalid_arg (Printf.sprintf "Network.make: session %d receiver %d unreachable" i k))
    s.receivers

let check_capacities graph =
  (* Graph.add_link already rejects NaN/zero/negative capacities; an
     infinite capacity would make the water-filling bounds meaningless
     (slack arithmetic produces NaN), so reject it here. *)
  for l = 0 to Graph.link_count graph - 1 do
    let c = Graph.capacity graph l in
    if not (Float.is_finite c) then
      invalid_arg (Printf.sprintf "Network.make: link %d has non-finite capacity %g" l c)
  done

(* Rebuild the derived views from validated sessions and frozen
   per-receiver paths.  Linear in [n_links * sessions] (the CSR offset
   arrays) plus the total routed path length — the incremental
   surgeries pay this (cheap) assembly but skip global re-validation
   and re-routing (the per-session BFS passes).  The list-shaped
   views ([receivers_on_link], [all_on_link], [session_links]) are
   materialized on demand from the CSR rather than cached here, so
   surgery does not pay for views the caller never reads. *)
let assemble graph sessions paths =
  let n_links = Graph.link_count graph in
  let inc = build_incidence n_links paths in
  { graph; sessions; paths; inc; crosses_bits = lazy (build_crosses_bits n_links inc) }

let validate_and_route graph sessions =
  check_capacities graph;
  (* Sessions sharing a sender share one BFS tree: multicast workloads
     at scale source many sessions from few nodes, and each tree costs
     O(nodes + links).  The cache is bounded (FIFO) so a pathological
     all-distinct-senders population degrades to the old one-BFS-per-
     session cost instead of holding every tree live at once. *)
  let cache = Hashtbl.create 64 in
  let order = Queue.create () in
  let tree_of sender =
    match Hashtbl.find_opt cache sender with
    | Some t -> t
    | None ->
        let t = Routing.paths_from graph sender in
        if Hashtbl.length cache >= 64 then Hashtbl.remove cache (Queue.pop order);
        Hashtbl.replace cache sender t;
        Queue.add sender order;
        t
  in
  let paths =
    Array.mapi
      (fun i s ->
        validate_session graph i s;
        route_session_tree graph i s (tree_of s.sender))
      sessions
  in
  assemble graph sessions paths

let make graph sessions = validate_and_route graph (Array.copy sessions)

let graph t = t.graph
let session_count t = Array.length t.sessions
(* Straight off the incidence — the churn engine reads this per batch,
   so the fold over every spec would be an O(sessions) term. *)
let receiver_count t = t.inc.n_receivers

let check_session t i name =
  if i < 0 || i >= Array.length t.sessions then
    invalid_arg (Printf.sprintf "Network.%s: unknown session %d" name i)

let session_spec t i =
  check_session t i "session_spec";
  t.sessions.(i)

let session_type t i = (session_spec t i).session_type

let weight t (r : receiver_id) =
  check_session t r.session "weight";
  let spec = t.sessions.(r.session) in
  if r.index < 0 || r.index >= Array.length spec.weights then
    invalid_arg "Network.weight: unknown receiver";
  spec.weights.(r.index)

let all_weights_unit t =
  Array.for_all (fun s -> Array.for_all (fun w -> w = 1.0) s.weights) t.sessions

let with_weights t w =
  if Array.length w <> Array.length t.sessions then
    invalid_arg "Network.with_weights: session count mismatch";
  let sessions =
    Array.mapi
      (fun i s ->
        if Array.length w.(i) <> Array.length s.receivers then
          invalid_arg "Network.with_weights: receiver count mismatch";
        Array.iter
          (fun x ->
            if not (x > 0.0) then invalid_arg "Network.with_weights: non-positive weight";
            if not (Float.is_finite x) then invalid_arg "Network.with_weights: non-finite weight")
          w.(i);
        (if s.session_type = Single_rate && Array.length w.(i) > 0 then begin
           let w0 = w.(i).(0) in
           if Array.exists (fun x -> x <> w0) w.(i) then
             invalid_arg "Network.with_weights: unequal weights in single-rate session"
         end);
        { s with weights = Array.copy w.(i) })
      t.sessions
  in
  { t with sessions }
let rho t i = (session_spec t i).rho
let vfn t i = (session_spec t i).vfn

let receivers_of_session t i =
  check_session t i "receivers_of_session";
  Array.init (Array.length t.sessions.(i).receivers) (fun k -> { session = i; index = k })

let all_receivers t =
  Array.concat (List.init (session_count t) (fun i -> receivers_of_session t i))

let check_receiver t r name =
  check_session t r.session name;
  if r.index < 0 || r.index >= Array.length t.sessions.(r.session).receivers then
    invalid_arg (Printf.sprintf "Network.%s: unknown receiver %d of session %d" name r.index r.session)

let data_path t r =
  check_receiver t r "data_path";
  t.paths.(r.session).(r.index)

let session_links t i =
  check_session t i "session_links";
  let inc = t.inc in
  let links = ref [] in
  for gid = inc.session_first.(i) to inc.session_first.(i + 1) - 1 do
    for p = inc.recv_row.(gid) to inc.recv_row.(gid + 1) - 1 do
      links := inc.recv_cells.(p) :: !links
    done
  done;
  List.sort_uniq compare !links

(* A cell lists its gids ascending, i.e. receiver-index ascending —
   the order the cached lists kept. *)
let receivers_on_link t ~session ~link =
  check_session t session "receivers_on_link";
  if link < 0 || link >= Graph.link_count t.graph then
    invalid_arg "Network.receivers_on_link: unknown link";
  let inc = t.inc in
  match find_cell inc ~session ~link with
  | -1 -> []
  | c ->
      List.init
        (inc.cell_first.(c + 1) - inc.cell_first.(c))
        (fun j -> inc.receiver_of_gid.(inc.link_cells.(inc.cell_first.(c) + j)))

(* A link's whole cell range spans its sessions in ascending order, so
   this is the session-major concatenation the cache used to hold. *)
let all_on_link t ~link =
  if link < 0 || link >= Graph.link_count t.graph then invalid_arg "Network.all_on_link: unknown link";
  let inc = t.inc in
  let lo = inc.cell_first.(inc.link_row.(link)) and hi = inc.cell_first.(inc.link_row.(link + 1)) in
  List.init (hi - lo) (fun j -> inc.receiver_of_gid.(inc.link_cells.(lo + j)))

let incidence t = t.inc

let receiver_gid t r =
  check_receiver t r "receiver_gid";
  t.inc.session_first.(r.session) + r.index

let crosses t r l =
  check_receiver t r "crosses";
  l >= 0
  && l < Graph.link_count t.graph
  &&
  let bit = ((t.inc.session_first.(r.session) + r.index) * Graph.link_count t.graph) + l in
  Char.code (Bytes.unsafe_get (Lazy.force t.crosses_bits) (bit lsr 3)) land (1 lsl (bit land 7)) <> 0

let is_unicast t i = Array.length (session_spec t i).receivers = 1

let with_session_types t types =
  if Array.length types <> Array.length t.sessions then
    invalid_arg "Network.with_session_types: length mismatch";
  let sessions = Array.mapi (fun i s -> { s with session_type = types.(i) }) t.sessions in
  { t with sessions }

let with_rho t i rho =
  check_session t i "with_rho";
  if not (rho > 0.0) then invalid_arg "Network.with_rho: rho must be positive";
  let sessions = Array.copy t.sessions in
  sessions.(i) <- { sessions.(i) with rho };
  { t with sessions }

let with_vfns t vfns =
  if Array.length vfns <> Array.length t.sessions then invalid_arg "Network.with_vfns: length mismatch";
  let sessions = Array.mapi (fun i s -> { s with vfn = vfns.(i) }) t.sessions in
  { t with sessions }

let drop_index arr k = Array.init (Array.length arr - 1) (fun j -> if j < k then arr.(j) else arr.(j + 1))

let without_receiver t r =
  check_receiver t r "without_receiver";
  let s = t.sessions.(r.session) in
  if Array.length s.receivers <= 1 then
    invalid_arg "Network.without_receiver: session would become empty";
  (* Removal cannot invalidate anything (members shrink, weights and
     rho are untouched, every other path is unchanged), so skip global
     re-validation and re-routing: drop the receiver's row and splice
     it out of the incidence in place of a rebuild. *)
  let sessions = Array.copy t.sessions in
  sessions.(r.session) <-
    { s with receivers = drop_index s.receivers r.index; weights = drop_index s.weights r.index };
  let paths = Array.copy t.paths in
  paths.(r.session) <- drop_index t.paths.(r.session) r.index;
  let inc = incidence_remove t.inc ~g0:(t.inc.session_first.(r.session) + r.index) in
  { t with sessions; paths; inc;
    crosses_bits = lazy (build_crosses_bits (Graph.link_count t.graph) inc) }

let with_receiver ?weight t ~session ~node =
  check_session t session "with_receiver";
  let s = t.sessions.(session) in
  let weight = match weight with Some w -> w | None -> s.weights.(0) in
  if not (weight > 0.0 && Float.is_finite weight) then
    invalid_arg "Network.with_receiver: weight must be positive and finite";
  if s.session_type = Single_rate && weight <> s.weights.(0) then
    invalid_arg "Network.with_receiver: unequal weights in single-rate session";
  if node < 0 || node >= Graph.node_count t.graph then
    invalid_arg (Printf.sprintf "Network.with_receiver: unknown node %d" node);
  if s.sender = node || Array.exists (fun r -> r = node) s.receivers then
    invalid_arg
      (Printf.sprintf "Network.with_receiver: session %d already has a member on node %d" session node);
  let s' =
    { s with
      receivers = Array.append s.receivers [| node |];
      weights = Array.append s.weights [| weight |] }
  in
  let sessions = Array.copy t.sessions in
  sessions.(session) <- s';
  let paths = Array.copy t.paths in
  (* Route only the newcomer: one early-exit BFS from the session's
     sender.  BFS is deterministic, so this is the exact path a full
     re-route of the session would assign, and every existing
     receiver's frozen path is reused verbatim. *)
  let new_path =
    match Routing.shortest_path t.graph s.sender node with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf "Network.make: session %d receiver %d unreachable" session
             (Array.length s.receivers))
  in
  paths.(session) <- Array.append t.paths.(session) [| new_path |];
  let inc = incidence_add t.inc ~session ~path:new_path in
  { t with sessions; paths; inc;
    crosses_bits = lazy (build_crosses_bits (Graph.link_count t.graph) inc) }

let with_capacity t link cap =
  if link < 0 || link >= Graph.link_count t.graph then
    invalid_arg (Printf.sprintf "Network.with_capacity: unknown link %d" link);
  if not (Float.is_finite cap && cap > 0.0) then
    invalid_arg (Printf.sprintf "Network.with_capacity: capacity must be positive and finite (got %g)" cap);
  let graph = Graph.copy t.graph in
  Graph.set_capacity graph link cap;
  (* Routing is hop-count BFS, capacity-independent: paths and every
     view derived from them survive a capacity change untouched. *)
  { t with graph }

(* --- coalesced surgery ------------------------------------------------ *)

(* A batch of churn events applied through the single-event [with_*]
   functions pays one full CSR splice {e per event} — O(sessions +
   path positions) each, so a K-event batch costs K incidence
   rebuilds.  The surgery builder accumulates every change on private
   copies of the spec/path arrays (cheap pointer memcpys plus
   per-touched-session work) and pays {e one} [build_incidence] at
   commit, which is what lets the batch engine's per-event cost
   amortize toward the component-local solve at 10⁵–10⁶ sessions.

   Validation and routing semantics are identical to folding the
   [with_*] functions event by event — each operation validates
   against the accumulated state and raises the same exceptions — and
   a raise leaves the base network untouched (the builder is the only
   thing dirtied). *)

type surgery = {
  mutable srg_graph : Graph.t;
  (* The base graph is shared until the first capacity write; copied
     at most once per surgery, not once per capacity event. *)
  mutable srg_graph_owned : bool;
  srg_sessions : session_spec array;
  srg_paths : Routing.path array array;
}

let surgery_begin t =
  {
    srg_graph = t.graph;
    srg_graph_owned = false;
    srg_sessions = Array.copy t.sessions;
    srg_paths = Array.copy t.paths;
  }

let surgery_session_count srg = Array.length srg.srg_sessions

let surgery_spec srg i =
  if i < 0 || i >= Array.length srg.srg_sessions then
    invalid_arg (Printf.sprintf "Network.surgery_spec: unknown session %d" i);
  srg.srg_sessions.(i)

let surgery_join ?weight srg ~session ~node =
  if session < 0 || session >= Array.length srg.srg_sessions then
    invalid_arg (Printf.sprintf "Network.with_receiver: unknown session %d" session);
  let s = srg.srg_sessions.(session) in
  let weight = match weight with Some w -> w | None -> s.weights.(0) in
  if not (weight > 0.0 && Float.is_finite weight) then
    invalid_arg "Network.with_receiver: weight must be positive and finite";
  if s.session_type = Single_rate && weight <> s.weights.(0) then
    invalid_arg "Network.with_receiver: unequal weights in single-rate session";
  if node < 0 || node >= Graph.node_count srg.srg_graph then
    invalid_arg (Printf.sprintf "Network.with_receiver: unknown node %d" node);
  if s.sender = node || Array.exists (fun r -> r = node) s.receivers then
    invalid_arg
      (Printf.sprintf "Network.with_receiver: session %d already has a member on node %d" session node);
  let new_path =
    match Routing.shortest_path srg.srg_graph s.sender node with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf "Network.make: session %d receiver %d unreachable" session
             (Array.length s.receivers))
  in
  srg.srg_sessions.(session) <-
    { s with
      receivers = Array.append s.receivers [| node |];
      weights = Array.append s.weights [| weight |] };
  srg.srg_paths.(session) <- Array.append srg.srg_paths.(session) [| new_path |]

let surgery_leave srg (r : receiver_id) =
  if r.session < 0 || r.session >= Array.length srg.srg_sessions then
    invalid_arg (Printf.sprintf "Network.without_receiver: unknown session %d" r.session);
  let s = srg.srg_sessions.(r.session) in
  if r.index < 0 || r.index >= Array.length s.receivers then
    invalid_arg
      (Printf.sprintf "Network.without_receiver: unknown receiver %d of session %d" r.index r.session);
  if Array.length s.receivers <= 1 then
    invalid_arg "Network.without_receiver: session would become empty";
  srg.srg_sessions.(r.session) <-
    { s with receivers = drop_index s.receivers r.index; weights = drop_index s.weights r.index };
  srg.srg_paths.(r.session) <- drop_index srg.srg_paths.(r.session) r.index

let surgery_rho srg i rho =
  if i < 0 || i >= Array.length srg.srg_sessions then
    invalid_arg (Printf.sprintf "Network.with_rho: unknown session %d" i);
  if not (rho > 0.0) then invalid_arg "Network.with_rho: rho must be positive";
  srg.srg_sessions.(i) <- { srg.srg_sessions.(i) with rho }

let surgery_capacity srg link cap =
  if link < 0 || link >= Graph.link_count srg.srg_graph then
    invalid_arg (Printf.sprintf "Network.with_capacity: unknown link %d" link);
  if not (Float.is_finite cap && cap > 0.0) then
    invalid_arg (Printf.sprintf "Network.with_capacity: capacity must be positive and finite (got %g)" cap);
  if not srg.srg_graph_owned then begin
    srg.srg_graph <- Graph.copy srg.srg_graph;
    srg.srg_graph_owned <- true
  end;
  Graph.set_capacity srg.srg_graph link cap

let surgery_commit srg = assemble srg.srg_graph srg.srg_sessions srg.srg_paths

let pp fmt t =
  Array.iteri
    (fun i s ->
      let ty = match s.session_type with Single_rate -> "S" | Multi_rate -> "M" in
      Format.fprintf fmt "S%d [%s, rho=%g, v=%a]: X@%d -> " (i + 1) ty s.rho Redundancy_fn.pp s.vfn
        s.sender;
      Array.iteri
        (fun k r ->
          let path = t.paths.(i).(k) in
          Format.fprintf fmt "%sr%d,%d@%d via {%s}" (if k > 0 then "; " else "") (i + 1) (k + 1) r
            (String.concat "," (List.map (Printf.sprintf "l%d") path)))
        s.receivers;
      Format.fprintf fmt "@.")
    t.sessions
