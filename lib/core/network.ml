module Graph = Mmfair_topology.Graph
module Routing = Mmfair_topology.Routing

type session_type = Single_rate | Multi_rate

type session_spec = {
  sender : Graph.node;
  receivers : Graph.node array;
  session_type : session_type;
  rho : float;
  vfn : Redundancy_fn.t;
  weights : float array;
}

let session ?(session_type = Multi_rate) ?(rho = infinity) ?(vfn = Redundancy_fn.Efficient)
    ?weights ~sender ~receivers () =
  let weights =
    match weights with
    | Some w -> Array.copy w
    | None -> Array.make (Array.length receivers) 1.0
  in
  { sender; receivers; session_type; rho; vfn; weights }

type receiver_id = { session : int; index : int }

type t = {
  graph : Graph.t;
  sessions : session_spec array;
  paths : Routing.path array array; (* paths.(i).(k) = data-path of r_{i,k} *)
  (* on_link.(j).(i) = receivers of session i crossing link j, reversed order *)
  on_link : receiver_id list array array;
  session_link_union : Graph.link_id list array; (* session data-path *)
}

let validate_and_route graph sessions =
  let n_links = Graph.link_count graph in
  let paths =
    Array.mapi
      (fun i s ->
        if Array.length s.receivers = 0 then
          invalid_arg (Printf.sprintf "Network.make: session %d has no receivers" i);
        if not (s.rho > 0.0) then
          invalid_arg (Printf.sprintf "Network.make: session %d has rho <= 0" i);
        if Array.length s.weights <> Array.length s.receivers then
          invalid_arg (Printf.sprintf "Network.make: session %d weight count mismatch" i);
        Array.iter
          (fun w ->
            if not (w > 0.0) then
              invalid_arg (Printf.sprintf "Network.make: session %d has a non-positive weight" i))
          s.weights;
        (if s.session_type = Single_rate && Array.length s.weights > 0 then begin
           let w0 = s.weights.(0) in
           if Array.exists (fun w -> w <> w0) s.weights then
             invalid_arg
               (Printf.sprintf "Network.make: single-rate session %d has unequal weights" i)
         end);
        (* The paper's restriction on τ: no two members of one session
           share a node. *)
        let members = Array.append [| s.sender |] s.receivers in
        let sorted = Array.copy members in
        Array.sort compare sorted;
        for k = 1 to Array.length sorted - 1 do
          if sorted.(k) = sorted.(k - 1) then
            invalid_arg
              (Printf.sprintf "Network.make: session %d maps two members to node %d" i sorted.(k))
        done;
        let from_sender = Routing.paths_from graph s.sender in
        Array.mapi
          (fun k r ->
            if r < 0 || r >= Graph.node_count graph then
              invalid_arg (Printf.sprintf "Network.make: session %d receiver %d on unknown node" i k);
            match from_sender.(r) with
            | Some p -> p
            | None ->
                invalid_arg
                  (Printf.sprintf "Network.make: session %d receiver %d unreachable" i k))
          s.receivers)
      sessions
  in
  let on_link = Array.init n_links (fun _ -> Array.make (Array.length sessions) []) in
  Array.iteri
    (fun i per_receiver ->
      Array.iteri
        (fun k path ->
          List.iter (fun l -> on_link.(l).(i) <- { session = i; index = k } :: on_link.(l).(i)) path)
        per_receiver)
    paths;
  (* Restore receiver-index order within each R_{i,j}. *)
  Array.iter (fun per_session -> Array.iteri (fun i l -> per_session.(i) <- List.rev l) per_session) on_link;
  let session_link_union =
    Array.map
      (fun per_receiver ->
        Array.fold_left (fun acc p -> List.rev_append p acc) [] per_receiver
        |> List.sort_uniq compare)
      paths
  in
  { graph; sessions; paths; on_link; session_link_union }

let make graph sessions = validate_and_route graph (Array.copy sessions)

let graph t = t.graph
let session_count t = Array.length t.sessions
let receiver_count t = Array.fold_left (fun acc s -> acc + Array.length s.receivers) 0 t.sessions

let check_session t i name =
  if i < 0 || i >= Array.length t.sessions then
    invalid_arg (Printf.sprintf "Network.%s: unknown session %d" name i)

let session_spec t i =
  check_session t i "session_spec";
  t.sessions.(i)

let session_type t i = (session_spec t i).session_type

let weight t (r : receiver_id) =
  check_session t r.session "weight";
  let spec = t.sessions.(r.session) in
  if r.index < 0 || r.index >= Array.length spec.weights then
    invalid_arg "Network.weight: unknown receiver";
  spec.weights.(r.index)

let all_weights_unit t =
  Array.for_all (fun s -> Array.for_all (fun w -> w = 1.0) s.weights) t.sessions

let with_weights t w =
  if Array.length w <> Array.length t.sessions then
    invalid_arg "Network.with_weights: session count mismatch";
  let sessions =
    Array.mapi
      (fun i s ->
        if Array.length w.(i) <> Array.length s.receivers then
          invalid_arg "Network.with_weights: receiver count mismatch";
        Array.iter
          (fun x -> if not (x > 0.0) then invalid_arg "Network.with_weights: non-positive weight")
          w.(i);
        (if s.session_type = Single_rate && Array.length w.(i) > 0 then begin
           let w0 = w.(i).(0) in
           if Array.exists (fun x -> x <> w0) w.(i) then
             invalid_arg "Network.with_weights: unequal weights in single-rate session"
         end);
        { s with weights = Array.copy w.(i) })
      t.sessions
  in
  { t with sessions }
let rho t i = (session_spec t i).rho
let vfn t i = (session_spec t i).vfn

let receivers_of_session t i =
  check_session t i "receivers_of_session";
  Array.init (Array.length t.sessions.(i).receivers) (fun k -> { session = i; index = k })

let all_receivers t =
  Array.concat (List.init (session_count t) (fun i -> receivers_of_session t i))

let check_receiver t r name =
  check_session t r.session name;
  if r.index < 0 || r.index >= Array.length t.sessions.(r.session).receivers then
    invalid_arg (Printf.sprintf "Network.%s: unknown receiver %d of session %d" name r.index r.session)

let data_path t r =
  check_receiver t r "data_path";
  t.paths.(r.session).(r.index)

let session_links t i =
  check_session t i "session_links";
  t.session_link_union.(i)

let receivers_on_link t ~session ~link =
  check_session t session "receivers_on_link";
  if link < 0 || link >= Graph.link_count t.graph then
    invalid_arg "Network.receivers_on_link: unknown link";
  t.on_link.(link).(session)

let all_on_link t ~link =
  if link < 0 || link >= Graph.link_count t.graph then invalid_arg "Network.all_on_link: unknown link";
  Array.to_list t.on_link.(link) |> List.concat

let crosses t r l = List.exists (fun l' -> l' = l) (data_path t r)

let is_unicast t i = Array.length (session_spec t i).receivers = 1

let with_session_types t types =
  if Array.length types <> Array.length t.sessions then
    invalid_arg "Network.with_session_types: length mismatch";
  let sessions = Array.mapi (fun i s -> { s with session_type = types.(i) }) t.sessions in
  { t with sessions }

let with_vfns t vfns =
  if Array.length vfns <> Array.length t.sessions then invalid_arg "Network.with_vfns: length mismatch";
  let sessions = Array.mapi (fun i s -> { s with vfn = vfns.(i) }) t.sessions in
  { t with sessions }

let without_receiver t r =
  check_receiver t r "without_receiver";
  let s = t.sessions.(r.session) in
  if Array.length s.receivers <= 1 then
    invalid_arg "Network.without_receiver: session would become empty";
  let receivers =
    Array.of_list
      (List.filteri (fun k _ -> k <> r.index) (Array.to_list s.receivers))
  in
  let weights =
    Array.of_list (List.filteri (fun k _ -> k <> r.index) (Array.to_list s.weights))
  in
  let sessions =
    Array.mapi (fun i s' -> if i = r.session then { s' with receivers; weights } else s') t.sessions
  in
  validate_and_route t.graph sessions

let pp fmt t =
  Array.iteri
    (fun i s ->
      let ty = match s.session_type with Single_rate -> "S" | Multi_rate -> "M" in
      Format.fprintf fmt "S%d [%s, rho=%g, v=%a]: X@%d -> " (i + 1) ty s.rho Redundancy_fn.pp s.vfn
        s.sender;
      Array.iteri
        (fun k r ->
          let path = t.paths.(i).(k) in
          Format.fprintf fmt "%sr%d,%d@%d via {%s}" (if k > 0 then "; " else "") (i + 1) (k + 1) r
            (String.concat "," (List.map (Printf.sprintf "l%d") path)))
        s.receivers;
      Format.fprintf fmt "@.")
    t.sessions
