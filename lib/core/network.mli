(** The paper's network model: [N = (G, {S_1…S_m}, τ, Φ)].

    A network couples a capacitated graph with a set of multicast
    sessions, the topology mapping [τ] (where each member sits), and
    the session-type mapping [Φ] (single-rate or multi-rate).  On
    construction we run the routing algorithm once and freeze every
    receiver's data-path, plus the paper's derived sets [R_{i,j}] (the
    receivers of session [i] crossing link [j]) and [R_j] (all
    receivers crossing [j]). *)

type session_type = Single_rate | Multi_rate
(** The paper's [Φ(S_i) ∈ {S, M}]. *)

type session_spec = {
  sender : Mmfair_topology.Graph.node;           (** [X_i]'s node under τ. *)
  receivers : Mmfair_topology.Graph.node array;  (** [r_{i,k}]'s nodes under τ. *)
  session_type : session_type;                   (** [Φ(S_i)]. *)
  rho : float;  (** Maximum desired rate [ρ_i]; [infinity] when unbounded. *)
  vfn : Redundancy_fn.t;  (** Session link-rate function [v_i] (Section 3). *)
  weights : float array;
      (** Per-receiver fairness weights — the paper's Section-5
          proposal for TCP-fairness ("a receiver's rate is weighted by
          the inverse of round trip time").  Weight 1 everywhere
          recovers plain max-min fairness; under weighted max-min
          fairness the {e normalized} rates [a_{i,k}/w_{i,k}] are
          what progressive filling equalizes.  Must be positive and,
          inside a single-rate session, all equal (its receivers are
          forced to one rate, so unequal weights would be
          contradictory). *)
}
(** Everything the caller specifies about one session. *)

val session :
  ?session_type:session_type ->
  ?rho:float ->
  ?vfn:Redundancy_fn.t ->
  ?weights:float array ->
  sender:Mmfair_topology.Graph.node ->
  receivers:Mmfair_topology.Graph.node array ->
  unit ->
  session_spec
(** Convenience constructor; defaults: [Multi_rate], [rho = infinity],
    [vfn = Efficient], all weights 1. *)

type receiver_id = { session : int; index : int }
(** Identifies receiver [r_{i,k}] as (session [i], index [k]), both
    0-based. *)

type t
(** An immutable, validated network with routed data-paths. *)

val make : Mmfair_topology.Graph.t -> session_spec array -> t
(** [make g sessions] validates and routes.  Raises [Invalid_argument]
    when a session has no receivers, [rho ≤ 0] (or NaN), a [Scaled]
    redundancy factor is below 1 or non-finite, a weight is
    non-positive or non-finite, some link capacity is non-finite, a
    member node is unknown, two members of one session share a node
    (the paper's restriction on τ), or some receiver is unreachable
    from its sender.  Every constructed [t] is therefore safe to hand
    to any solver: degenerate inputs are rejected here, with a
    diagnostic naming the offending session or link. *)

val graph : t -> Mmfair_topology.Graph.t
val session_count : t -> int
(** The paper's [m]. *)

val receiver_count : t -> int
(** Total receivers over all sessions. *)

val session_spec : t -> int -> session_spec
val session_type : t -> int -> session_type
val rho : t -> int -> float
val vfn : t -> int -> Redundancy_fn.t

val weight : t -> receiver_id -> float
(** The receiver's fairness weight [w_{i,k}]. *)

val all_weights_unit : t -> bool
(** Whether every receiver's weight is 1 (plain max-min fairness; the
    allocator's closed-form linear engine requires this). *)

val with_weights : t -> float array array -> t
(** [with_weights t w] replaces every session's weight vector
    ([w.(i).(k)] for [r_{i,k}]).  Raises [Invalid_argument] on shape
    mismatch, non-positive weights, or unequal weights inside a
    single-rate session. *)

val receivers_of_session : t -> int -> receiver_id array
(** The [k_i] receivers of session [i], in index order. *)

val all_receivers : t -> receiver_id array
(** Every receiver, session-major order. *)

val data_path : t -> receiver_id -> Mmfair_topology.Routing.path
(** The receiver's frozen data-path. *)

val session_links : t -> int -> Mmfair_topology.Graph.link_id list
(** The session's data-path: the union of its receivers' paths,
    ascending link order. *)

val receivers_on_link : t -> session:int -> link:Mmfair_topology.Graph.link_id -> receiver_id list
(** The paper's [R_{i,j}]. *)

val all_on_link : t -> link:Mmfair_topology.Graph.link_id -> receiver_id list
(** The paper's [R_j]. *)

val crosses : t -> receiver_id -> Mmfair_topology.Graph.link_id -> bool
(** Whether the receiver's data-path includes the link.  O(1): answered
    from a precomputed link×receiver bitset. *)

type incidence = private {
  n_receivers : int;  (** Total receivers; global ids are [0..n_receivers-1]. *)
  n_cells : int;  (** Compact (link, session) cells some receiver crosses. *)
  session_first : int array;
      (** [m+1] entries; receiver [r_{i,k}]'s global id is
          [session_first.(i) + k], and [session_first.(m)] is
          [n_receivers]. *)
  receiver_of_gid : receiver_id array;  (** Inverse of the global-id encoding. *)
  link_row : int array;
      (** [n_links + 1] offsets into [cell_session]/[cell_first]: link
          [l]'s compact cells are [link_row.(l) .. link_row.(l+1))], in
          ascending session order.  Only (link, session) pairs some
          receiver crosses get a cell, so the index costs
          O(total path length + n_links), not O(n_links · m). *)
  cell_session : int array;  (** Session of each compact cell. *)
  cell_first : int array;
      (** [n_cells + 1] offsets into [link_cells]: cell [c]'s receivers
          (the paper's [R_{i,l}] for [i = cell_session.(c)]) occupy
          [link_cells.(cell_first.(c)) .. link_cells.(cell_first.(c+1)))],
          in receiver-index order; link [l]'s full range ([R_l]) spans
          [cell_first.(link_row.(l)) .. cell_first.(link_row.(l+1)))]. *)
  link_cells : int array;  (** Global receiver ids, grouped as above. *)
  recv_row : int array;  (** [n_receivers + 1] offsets into [recv_cells]. *)
  recv_cells : int array;
      (** Link ids of each receiver's data-path, path order, grouped by
          global receiver id. *)
  recv_cell_of : int array;
      (** Parallel to [recv_cells]: the compact cell of each path entry,
          so per-receiver updates (freezes) reach their cells without a
          lookup. *)
}
(** Flat CSR-style incidence index over the frozen routing — the
    allocator's hot loops iterate these int arrays instead of the
    list-based [receivers_on_link]/[all_on_link] views.  Built once at
    construction and shared (the [with_*] variants never re-route).
    Exposed read-only: never mutate the arrays. *)

val incidence : t -> incidence
(** The precomputed incidence index.  O(1). *)

val receiver_gid : t -> receiver_id -> int
(** The receiver's global id in the incidence index
    ([session_first.(session) + index]). *)

val is_unicast : t -> int -> bool
(** A session with exactly one receiver (the paper treats unicast as
    either type; see Section 2). *)

val with_session_types : t -> session_type array -> t
(** [with_session_types t types] is the paper's Φ-replacement: an
    otherwise identical network with session [i] given [types.(i)].
    Paths are not re-routed (the topology is unchanged).  Raises
    [Invalid_argument] on length mismatch. *)

val with_vfns : t -> Redundancy_fn.t array -> t
(** Lemma-4 replacement: same network, new redundancy functions. *)

val with_rho : t -> int -> float -> t
(** [with_rho t i rho] replaces session [i]'s maximum desired rate
    ([infinity] = unbounded).  Paths are untouched.  Raises
    [Invalid_argument] on an unknown session or [rho ≤ 0] (or NaN). *)

val without_receiver : t -> receiver_id -> t
(** Section-2.5 surgery: remove one receiver.  Incremental: only the
    touched session is rebuilt (removal cannot invalidate anything
    else — every other session's validation and routing is reused), so
    churn replay stays linear in path length rather than re-validating
    the whole network.  The session must keep at least one receiver;
    receivers after the removed index shift down by one. *)

val with_receiver : ?weight:float -> t -> session:int -> node:Mmfair_topology.Graph.node -> t
(** Join surgery: add a receiver on [node] to [session], appended at
    the highest index.  Incremental like {!without_receiver}: only the
    touched session is validated and re-routed (one BFS from its
    sender); all other sessions' frozen paths are reused.  [weight]
    defaults to the session's first receiver's weight.  Raises
    [Invalid_argument] when the session is unknown, the node is
    unknown or already hosts a member of this session (the paper's τ
    restriction), the weight is non-positive or non-finite, the weight
    differs inside a single-rate session, or the node is unreachable
    from the sender. *)

val with_capacity : t -> Mmfair_topology.Graph.link_id -> float -> t
(** Capacity surgery: an otherwise identical network with the link's
    capacity replaced.  Routing is hop-count BFS and therefore
    capacity-independent, so paths and all derived views are shared
    unchanged; the graph is copied, never mutated in place.  Raises
    [Invalid_argument] on an unknown link or a non-positive or
    non-finite capacity. *)

(** {2 Coalesced surgery}

    A batch of churn events applied through the single-event [with_*]
    functions pays one full incidence splice {e per event}.  The
    surgery builder accumulates any number of changes on private
    copies of the network's internal arrays and pays {e one} rebuild
    at {!surgery_commit} — the batch engine's ingest path, where a
    K-event batch must not cost K incidence rebuilds.  Semantics
    (validation order, routing, error messages) are identical to
    folding the corresponding [with_*] calls: each operation validates
    against the accumulated state, and a raise leaves the base network
    untouched.  A builder is single-use: discard it after
    {!surgery_commit}. *)

type surgery

val surgery_begin : t -> surgery
(** A builder over [t].  O(sessions) pointer copies, no validation. *)

val surgery_session_count : surgery -> int

val surgery_spec : surgery -> int -> session_spec
(** The accumulated spec of session [i] — mid-batch state, reflecting
    every operation applied so far.  Raises [Invalid_argument] on an
    unknown session. *)

val surgery_join : ?weight:float -> surgery -> session:int -> node:Mmfair_topology.Graph.node -> unit
(** As {!with_receiver}, against the accumulated state. *)

val surgery_leave : surgery -> receiver_id -> unit
(** As {!without_receiver}, against the accumulated state. *)

val surgery_rho : surgery -> int -> float -> unit
(** As {!with_rho}, against the accumulated state. *)

val surgery_capacity : surgery -> Mmfair_topology.Graph.link_id -> float -> unit
(** As {!with_capacity}, against the accumulated state (the graph is
    copied at most once per surgery). *)

val surgery_commit : surgery -> t
(** The network with every accumulated change applied: one incidence
    rebuild, linear in sessions + links + total routed path length. *)

val pp : Format.formatter -> t -> unit
(** Sessions with their types, senders, receivers and paths. *)
