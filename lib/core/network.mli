(** The paper's network model: [N = (G, {S_1…S_m}, τ, Φ)].

    A network couples a capacitated graph with a set of multicast
    sessions, the topology mapping [τ] (where each member sits), and
    the session-type mapping [Φ] (single-rate or multi-rate).  On
    construction we run the routing algorithm once and freeze every
    receiver's data-path, plus the paper's derived sets [R_{i,j}] (the
    receivers of session [i] crossing link [j]) and [R_j] (all
    receivers crossing [j]). *)

type session_type = Single_rate | Multi_rate
(** The paper's [Φ(S_i) ∈ {S, M}]. *)

type session_spec = {
  sender : Mmfair_topology.Graph.node;           (** [X_i]'s node under τ. *)
  receivers : Mmfair_topology.Graph.node array;  (** [r_{i,k}]'s nodes under τ. *)
  session_type : session_type;                   (** [Φ(S_i)]. *)
  rho : float;  (** Maximum desired rate [ρ_i]; [infinity] when unbounded. *)
  vfn : Redundancy_fn.t;  (** Session link-rate function [v_i] (Section 3). *)
  weights : float array;
      (** Per-receiver fairness weights — the paper's Section-5
          proposal for TCP-fairness ("a receiver's rate is weighted by
          the inverse of round trip time").  Weight 1 everywhere
          recovers plain max-min fairness; under weighted max-min
          fairness the {e normalized} rates [a_{i,k}/w_{i,k}] are
          what progressive filling equalizes.  Must be positive and,
          inside a single-rate session, all equal (its receivers are
          forced to one rate, so unequal weights would be
          contradictory). *)
}
(** Everything the caller specifies about one session. *)

val session :
  ?session_type:session_type ->
  ?rho:float ->
  ?vfn:Redundancy_fn.t ->
  ?weights:float array ->
  sender:Mmfair_topology.Graph.node ->
  receivers:Mmfair_topology.Graph.node array ->
  unit ->
  session_spec
(** Convenience constructor; defaults: [Multi_rate], [rho = infinity],
    [vfn = Efficient], all weights 1. *)

type receiver_id = { session : int; index : int }
(** Identifies receiver [r_{i,k}] as (session [i], index [k]), both
    0-based. *)

type t
(** An immutable, validated network with routed data-paths. *)

val make : Mmfair_topology.Graph.t -> session_spec array -> t
(** [make g sessions] validates and routes.  Raises [Invalid_argument]
    when a session has no receivers, [rho ≤ 0] (or NaN), a [Scaled]
    redundancy factor is below 1 or non-finite, a weight is
    non-positive or non-finite, some link capacity is non-finite, a
    member node is unknown, two members of one session share a node
    (the paper's restriction on τ), or some receiver is unreachable
    from its sender.  Every constructed [t] is therefore safe to hand
    to any solver: degenerate inputs are rejected here, with a
    diagnostic naming the offending session or link. *)

val graph : t -> Mmfair_topology.Graph.t
val session_count : t -> int
(** The paper's [m]. *)

val receiver_count : t -> int
(** Total receivers over all sessions. *)

val session_spec : t -> int -> session_spec
val session_type : t -> int -> session_type
val rho : t -> int -> float
val vfn : t -> int -> Redundancy_fn.t

val weight : t -> receiver_id -> float
(** The receiver's fairness weight [w_{i,k}]. *)

val all_weights_unit : t -> bool
(** Whether every receiver's weight is 1 (plain max-min fairness; the
    allocator's closed-form linear engine requires this). *)

val with_weights : t -> float array array -> t
(** [with_weights t w] replaces every session's weight vector
    ([w.(i).(k)] for [r_{i,k}]).  Raises [Invalid_argument] on shape
    mismatch, non-positive weights, or unequal weights inside a
    single-rate session. *)

val receivers_of_session : t -> int -> receiver_id array
(** The [k_i] receivers of session [i], in index order. *)

val all_receivers : t -> receiver_id array
(** Every receiver, session-major order. *)

val data_path : t -> receiver_id -> Mmfair_topology.Routing.path
(** The receiver's frozen data-path. *)

val session_links : t -> int -> Mmfair_topology.Graph.link_id list
(** The session's data-path: the union of its receivers' paths,
    ascending link order. *)

val receivers_on_link : t -> session:int -> link:Mmfair_topology.Graph.link_id -> receiver_id list
(** The paper's [R_{i,j}]. *)

val all_on_link : t -> link:Mmfair_topology.Graph.link_id -> receiver_id list
(** The paper's [R_j]. *)

val crosses : t -> receiver_id -> Mmfair_topology.Graph.link_id -> bool
(** Whether the receiver's data-path includes the link.  O(1): answered
    from a precomputed link×receiver bitset. *)

type incidence = private {
  n_receivers : int;  (** Total receivers; global ids are [0..n_receivers-1]. *)
  session_first : int array;
      (** [m+1] entries; receiver [r_{i,k}]'s global id is
          [session_first.(i) + k], and [session_first.(m)] is
          [n_receivers]. *)
  receiver_of_gid : receiver_id array;  (** Inverse of the global-id encoding. *)
  link_session_row : int array;
      (** [n_links·m + 1] offsets into [link_cells]: the receivers of
          session [i] crossing link [l] (the paper's [R_{i,l}]) occupy
          [link_cells.(link_session_row.(l·m+i))] up to (excl.)
          [link_cells.(link_session_row.(l·m+i+1))], in receiver-index
          order; link [l]'s full range ([R_l]) spans
          [link_session_row.(l·m) .. link_session_row.((l+1)·m)]. *)
  link_cells : int array;  (** Global receiver ids, grouped as above. *)
  recv_row : int array;  (** [n_receivers + 1] offsets into [recv_cells]. *)
  recv_cells : int array;
      (** Link ids of each receiver's data-path, path order, grouped by
          global receiver id. *)
}
(** Flat CSR-style incidence index over the frozen routing — the
    allocator's hot loops iterate these int arrays instead of the
    list-based [receivers_on_link]/[all_on_link] views.  Built once at
    construction and shared (the [with_*] variants never re-route).
    Exposed read-only: never mutate the arrays. *)

val incidence : t -> incidence
(** The precomputed incidence index.  O(1). *)

val receiver_gid : t -> receiver_id -> int
(** The receiver's global id in the incidence index
    ([session_first.(session) + index]). *)

val is_unicast : t -> int -> bool
(** A session with exactly one receiver (the paper treats unicast as
    either type; see Section 2). *)

val with_session_types : t -> session_type array -> t
(** [with_session_types t types] is the paper's Φ-replacement: an
    otherwise identical network with session [i] given [types.(i)].
    Paths are not re-routed (the topology is unchanged).  Raises
    [Invalid_argument] on length mismatch. *)

val with_vfns : t -> Redundancy_fn.t array -> t
(** Lemma-4 replacement: same network, new redundancy functions. *)

val without_receiver : t -> receiver_id -> t
(** Section-2.5 surgery: remove one receiver (re-validates; the
    session must keep at least one receiver). *)

val pp : Format.formatter -> t -> unit
(** Sessions with their types, senders, receivers and paths. *)
