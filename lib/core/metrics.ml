let rates_of alloc =
  let net = Allocation.network alloc in
  Array.map (fun r -> Allocation.rate alloc r) (Network.all_receivers net)

let jain_index alloc =
  let rates = rates_of alloc in
  let n = Array.length rates in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 rates in
    let sumsq = Array.fold_left (fun acc a -> acc +. (a *. a)) 0.0 rates in
    if sumsq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sumsq)
  end

let min_rate alloc = Array.fold_left Stdlib.min infinity (rates_of alloc)

let throughput = Allocation.total_throughput

let isolated_rates net =
  let g = Network.graph net in
  Array.concat
    (List.init (Network.session_count net) (fun i ->
         let solo = Network.make g [| Network.session_spec net i |] in
         let alloc = Allocator.max_min solo in
         Array.map (fun r -> Allocation.rate alloc r) (Network.all_receivers solo)))

let satisfaction ?reference alloc =
  let net = Allocation.network alloc in
  let reference = match reference with Some r -> r | None -> isolated_rates net in
  let rates = rates_of alloc in
  if Array.length reference <> Array.length rates then
    invalid_arg "Metrics.satisfaction: reference length mismatch";
  if Array.length rates = 0 then 1.0
  else begin
    let total = ref 0.0 in
    Array.iteri
      (fun i a ->
        let s = if reference.(i) <= 0.0 then 1.0 else Stdlib.min 1.0 (a /. reference.(i)) in
        total := !total +. s)
      rates;
    !total /. float_of_int (Array.length rates)
  end

let summary alloc =
  [
    ("jain", jain_index alloc);
    ("min-rate", min_rate alloc);
    ("throughput", throughput alloc);
    ("satisfaction", satisfaction alloc);
  ]
