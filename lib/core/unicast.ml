module Graph = Mmfair_topology.Graph
module Obs = Mmfair_obs

let validate net =
  for i = 0 to Network.session_count net - 1 do
    if not (Network.is_unicast net i) then invalid_arg "Unicast: all sessions must be unicast";
    (match Network.vfn net i with
    | Redundancy_fn.Efficient -> ()
    | _ -> invalid_arg "Unicast: sessions must use the efficient link-rate function");
    if Network.weight net { Network.session = i; index = 0 } <> 1.0 then
      invalid_arg "Unicast: weights must be 1"
  done

(* The textbook construction: at each step compute every remaining
   link's fair share (residual capacity / remaining flows crossing
   it); the minimum over links and over remaining rho limits fixes a
   batch of flows. *)
let solver_name = "Unicast"

let max_min_flow_rates net =
  validate net;
  let g = Network.graph net in
  let m = Network.session_count net in
  let n_links = Graph.link_count g in
  let rates = Array.make m 0.0 in
  let fixed = Array.make m false in
  let residual = Array.init n_links (Graph.capacity g) in
  let crosses = Array.init m (fun i -> Network.session_links net i) in
  let remaining = ref m in
  let round_no = ref 0 in
  let last_level = ref 0.0 in
  while !remaining > 0 do
    incr round_no;
    let want = Obs.Probe.enabled () in
    let fixed_evs = ref [] in
    let record i = if want then fixed_evs := (i, -1, rates.(i)) :: !fixed_evs in
    (* flows still unfixed per link *)
    let count = Array.make n_links 0 in
    Array.iteri
      (fun i links -> if not fixed.(i) then List.iter (fun l -> count.(l) <- count.(l) + 1) links)
      crosses;
    (* the binding constraint: smallest link share or smallest rho *)
    let best_share = ref infinity in
    for l = 0 to n_links - 1 do
      if count.(l) > 0 then
        best_share := Stdlib.min !best_share (residual.(l) /. float_of_int count.(l))
    done;
    let rho_bound = ref infinity in
    for i = 0 to m - 1 do
      if not fixed.(i) then rho_bound := Stdlib.min !rho_bound (Network.rho net i)
    done;
    if !rho_bound <= !best_share then begin
      (* fix every flow whose rho equals the bound *)
      for i = 0 to m - 1 do
        if (not fixed.(i)) && Network.rho net i <= !rho_bound +. 1e-12 then begin
          rates.(i) <- Network.rho net i;
          fixed.(i) <- true;
          decr remaining;
          List.iter (fun l -> residual.(l) <- residual.(l) -. rates.(i)) crosses.(i);
          record i
        end
      done
    end
    else begin
      (* find the bottleneck links first (against the pre-batch
         residuals — fixing a flow mid-batch must not turn other links
         into spurious bottlenecks), then fix their flows *)
      let share = !best_share in
      let bottleneck = Array.make n_links false in
      for l = 0 to n_links - 1 do
        if count.(l) > 0 && residual.(l) /. float_of_int count.(l) <= share +. 1e-12 then
          bottleneck.(l) <- true
      done;
      let any_fixed = ref false in
      for i = 0 to m - 1 do
        if (not fixed.(i)) && List.exists (fun l -> bottleneck.(l)) crosses.(i) then begin
          rates.(i) <- share;
          fixed.(i) <- true;
          decr remaining;
          List.iter (fun l -> residual.(l) <- residual.(l) -. share) crosses.(i);
          any_fixed := true;
          record i
        end
      done;
      if not !any_fixed then
        Solver_error.raise_error
          (Solver_error.No_progress
             { solver = solver_name; round = !round_no; residual_slack = share })
    end;
    if want then begin
      (* Batch filling, not uniform filling: [level] is the rate the
         round's batch was fixed at; [frozen] entries use
         receiver-index -1 (whole unicast flows).  [residual_slack] is
         the headroom the tightest link kept above the batch level. *)
      let level = Stdlib.min !best_share !rho_bound in
      let bottleneck_link =
        if !rho_bound <= !best_share then None
        else begin
          let found = ref None in
          for l = n_links - 1 downto 0 do
            if count.(l) > 0 && residual.(l) <= 1e-12 *. Stdlib.max 1.0 (Graph.capacity g l) then
              found := Some l
          done;
          !found
        end
      in
      Obs.Probe.round
        {
          Obs.Events.solver = solver_name;
          round = !round_no;
          level;
          increment = Stdlib.max 0.0 (level -. !last_level);
          active = !remaining;
          frozen = List.rev !fixed_evs;
          saturated_links = [];
          bottleneck_link;
          residual_slack = Stdlib.max 0.0 (!best_share -. level);
        };
      last_level := level
    end
  done;
  rates

let max_min_flow_rates_result net =
  Solver_error.protect ~solver:solver_name (fun () -> max_min_flow_rates net)

let agrees_with_general_allocator ?(eps = 1e-7) net =
  let classic = max_min_flow_rates net in
  let general = Allocator.max_min net in
  let ok = ref true in
  Array.iteri
    (fun i rate ->
      let a = Allocation.rate general { Network.session = i; index = 0 } in
      if Float.abs (a -. rate) > eps *. Stdlib.max 1.0 rate then ok := false)
    classic;
  !ok

type property1_violation = { session : int }

let to_allocation net rates =
  Allocation.make net (Array.map (fun r -> [| r |]) rates)

let property1 ?(eps = 1e-9) net rates =
  validate net;
  if Array.length rates <> Network.session_count net then invalid_arg "Unicast.property1: length";
  let alloc = to_allocation net rates in
  let violations = ref [] in
  for i = Network.session_count net - 1 downto 0 do
    let rho = Network.rho net i in
    let at_rho = Float.is_finite rho && rates.(i) >= rho -. (eps *. Stdlib.max 1.0 rho) in
    if not at_rho then begin
      let justified =
        List.exists
          (fun l ->
            Allocation.fully_utilized ~eps alloc l
            && List.for_all
                 (fun i' ->
                   Allocation.session_link_rate alloc ~session:i' ~link:l
                   <= Allocation.session_link_rate alloc ~session:i ~link:l
                      +. (eps *. Stdlib.max 1.0 rates.(i)))
                 (List.init (Network.session_count net) Fun.id))
          (Network.session_links net i)
      in
      if not justified then violations := { session = i } :: !violations
    end
  done;
  !violations

type property2_violation = { first : int; second : int }

let property2 ?(eps = 1e-9) net rates =
  validate net;
  if Array.length rates <> Network.session_count net then invalid_arg "Unicast.property2: length";
  let m = Network.session_count net in
  let paths = Array.init m (fun i -> List.sort_uniq compare (Network.session_links net i)) in
  let at_rho i =
    let rho = Network.rho net i in
    Float.is_finite rho && rates.(i) >= rho -. (eps *. Stdlib.max 1.0 rho)
  in
  let violations = ref [] in
  for x = 0 to m - 1 do
    for y = x + 1 to m - 1 do
      if paths.(x) = paths.(y) then begin
        let equal = Float.abs (rates.(x) -. rates.(y)) <= eps *. Stdlib.max 1.0 rates.(x) in
        let excused = (rates.(x) < rates.(y) && at_rho x) || (rates.(y) < rates.(x) && at_rho y) in
        if not (equal || excused) then violations := { first = x; second = y } :: !violations
      end
    done
  done;
  List.rev !violations
