module Graph = Mmfair_topology.Graph
module Routing = Mmfair_topology.Routing

type spec = {
  senders : Graph.node array;
  receivers : Graph.node array;
  rho : float;
  vfn : Redundancy_fn.t;
}

let spec ?(rho = infinity) ?(vfn = Redundancy_fn.Efficient) ~senders ~receivers () =
  { senders; receivers; rho; vfn }

type t = {
  net : Network.t;
  specs : spec array;
  assignments : int array array; (* assignments.(i).(k) = sender index for receiver k *)
  (* lowered receiver id per (original session, receiver index) *)
  lowered : Network.receiver_id array array;
}

let expand graph specs =
  Array.iteri
    (fun i s ->
      if Array.length s.senders = 0 then
        invalid_arg (Printf.sprintf "Multi_sender.expand: session %d has no senders" i);
      if Array.length s.receivers = 0 then
        invalid_arg (Printf.sprintf "Multi_sender.expand: session %d has no receivers" i))
    specs;
  (* hop distance from every sender (per spec) to every node *)
  let assignments =
    Array.mapi
      (fun i s ->
        let hops =
          Array.map
            (fun sender ->
              Routing.paths_from graph sender |> Array.map (Option.map List.length))
            s.senders
        in
        Array.mapi
          (fun k r ->
            let best = ref (-1) and best_hops = ref max_int in
            Array.iteri
              (fun si sender ->
                (* a sender on the receiver's own node is ineligible
                   (members of one session may not share a node) *)
                if sender <> r then
                  match hops.(si).(r) with
                  | Some h when h < !best_hops -> begin
                      best := si;
                      best_hops := h
                    end
                  | _ -> ())
              s.senders;
            if !best < 0 then
              invalid_arg
                (Printf.sprintf "Multi_sender.expand: session %d receiver %d reaches no sender" i k);
            !best)
          s.receivers)
      specs
  in
  (* one lowered sub-session per (session, sender) with assignees *)
  let sub_specs = ref [] and sub_meta = ref [] in
  Array.iteri
    (fun i s ->
      Array.iteri
        (fun si sender ->
          let members =
            Array.to_list s.receivers
            |> List.mapi (fun k node -> (k, node))
            |> List.filter (fun (k, _) -> assignments.(i).(k) = si)
          in
          if members <> [] then begin
            let receivers = Array.of_list (List.map snd members) in
            sub_specs :=
              Network.session ~session_type:Network.Multi_rate ~rho:s.rho ~vfn:s.vfn ~sender
                ~receivers ()
              :: !sub_specs;
            sub_meta := (i, List.map fst members) :: !sub_meta
          end)
        s.senders)
    specs;
  let sub_specs = Array.of_list (List.rev !sub_specs) in
  let sub_meta = Array.of_list (List.rev !sub_meta) in
  let net = Network.make graph sub_specs in
  let lowered =
    Array.map (fun s -> Array.make (Array.length s.receivers) { Network.session = -1; index = -1 }) specs
  in
  Array.iteri
    (fun sub (orig, members) ->
      List.iteri
        (fun idx k -> lowered.(orig).(k) <- { Network.session = sub; index = idx })
        members)
    sub_meta;
  { net; specs; assignments; lowered }

let network t = t.net
let session_count t = Array.length t.specs

let check_session t i =
  if i < 0 || i >= Array.length t.specs then invalid_arg "Multi_sender: unknown session"

let assignment t ~session =
  check_session t session;
  Array.copy t.assignments.(session)

let receiver_id t ~session ~receiver =
  check_session t session;
  if receiver < 0 || receiver >= Array.length t.specs.(session).receivers then
    invalid_arg "Multi_sender.receiver_id: unknown receiver";
  t.lowered.(session).(receiver)

let max_min ?engine t = Allocator.max_min ?engine t.net

let rate t alloc ~session ~receiver = Allocation.rate alloc (receiver_id t ~session ~receiver)
