module Graph = Mmfair_topology.Graph
module Obs = Mmfair_obs

let validate net =
  for i = 0 to Network.session_count net - 1 do
    if Network.session_type net i <> Network.Single_rate then
      invalid_arg "Tzeng_siu: all sessions must be single-rate";
    (match Network.vfn net i with
    | Redundancy_fn.Efficient -> ()
    | _ -> invalid_arg "Tzeng_siu: sessions must use the efficient link-rate function")
  done

(* Water-filling over *session* rates: each active session's rate
   rises uniformly; on link l the usage is (sum of frozen sessions'
   rates crossing l) + t * (number of active sessions crossing l);
   a session freezes when a link on its data-path saturates or rho is
   reached.  This is Tzeng & Siu's construction, written against the
   session-rate vector rather than receiver rates. *)
let solver_name = "Tzeng_siu"

let max_min_session_rates net =
  validate net;
  let g = Network.graph net in
  let m = Network.session_count net in
  let n_links = Graph.link_count g in
  let rates = Array.make m 0.0 in
  let active = Array.make m true in
  let crosses = Array.init m (fun i -> Network.session_links net i) in
  let t = ref 0.0 in
  let round_no = ref 0 in
  let last_slack = ref infinity in
  let guard = ref (m + n_links + 2) in
  while Array.exists Fun.id active do
    decr guard;
    incr round_no;
    if !guard < 0 then
      Solver_error.raise_error
        (Solver_error.No_progress
           { solver = solver_name; round = !round_no; residual_slack = !last_slack });
    (* per-link: frozen base and active count *)
    let base = Array.make n_links 0.0 in
    let slope = Array.make n_links 0 in
    Array.iteri
      (fun i links ->
        List.iter
          (fun l -> if active.(i) then slope.(l) <- slope.(l) + 1 else base.(l) <- base.(l) +. rates.(i))
          links)
      crosses;
    let bound = ref infinity in
    for l = 0 to n_links - 1 do
      if slope.(l) > 0 then
        bound := Stdlib.min !bound ((Graph.capacity g l -. base.(l)) /. float_of_int slope.(l))
    done;
    for i = 0 to m - 1 do
      if active.(i) then bound := Stdlib.min !bound (Network.rho net i)
    done;
    let t_new = Stdlib.max !t (Stdlib.min !bound infinity) in
    Array.iteri (fun i a -> if a then rates.(i) <- t_new) active;
    (* recompute link usage and freeze *)
    let usage = Array.make n_links 0.0 in
    Array.iteri (fun i links -> List.iter (fun l -> usage.(l) <- usage.(l) +. rates.(i)) links) crosses;
    let saturated l = usage.(l) >= Graph.capacity g l -. (1e-9 *. Stdlib.max 1.0 (Graph.capacity g l)) in
    let min_slack = ref infinity and min_slack_link = ref None in
    for l = 0 to n_links - 1 do
      let slack = Graph.capacity g l -. usage.(l) in
      if slack < !min_slack then begin
        min_slack := slack;
        min_slack_link := Some l
      end
    done;
    last_slack := !min_slack;
    let want = Obs.Probe.enabled () in
    let frozen_evs = ref [] in
    let frozen_any = ref false in
    for i = 0 to m - 1 do
      if active.(i) then begin
        let rho = Network.rho net i in
        if t_new >= rho -. (1e-9 *. Stdlib.max 1.0 rho) then begin
          rates.(i) <- rho;
          active.(i) <- false;
          frozen_any := true;
          if want then frozen_evs := (i, -1, rates.(i)) :: !frozen_evs
        end
        else if List.exists saturated crosses.(i) then begin
          active.(i) <- false;
          frozen_any := true;
          if want then frozen_evs := (i, -1, rates.(i)) :: !frozen_evs
        end
      end
    done;
    if not !frozen_any then
      Solver_error.raise_error
        (Solver_error.Stuck_link
           {
             solver = solver_name;
             round = !round_no;
             link = !min_slack_link;
             residual_slack = !min_slack;
           });
    if want then begin
      let n_active = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 active in
      let saturated_set =
        let acc = ref [] in
        for l = n_links - 1 downto 0 do
          if saturated l then acc := l :: !acc
        done;
        !acc
      in
      (* frozen entries use receiver-index -1: this solver freezes
         whole single-rate sessions, not individual receivers. *)
      Obs.Probe.round
        {
          Obs.Events.solver = solver_name;
          round = !round_no;
          level = t_new;
          increment = t_new -. !t;
          active = n_active;
          frozen = List.rev !frozen_evs;
          saturated_links = saturated_set;
          bottleneck_link = !min_slack_link;
          residual_slack = !min_slack;
        }
    end;
    t := t_new
  done;
  rates

let max_min_session_rates_result net =
  Solver_error.protect ~solver:solver_name (fun () -> max_min_session_rates net)

let to_allocation net session_rates =
  if Array.length session_rates <> Network.session_count net then
    invalid_arg "Tzeng_siu.to_allocation: length mismatch";
  Allocation.make net
    (Array.mapi
       (fun i rate ->
         Array.make (Array.length (Network.session_spec net i).Network.receivers) rate)
       session_rates)

let agrees_with_receiver_definition ?(eps = 1e-7) net =
  let session_rates = max_min_session_rates net in
  let receiver_based = Allocator.max_min net in
  let ok = ref true in
  Array.iteri
    (fun i rate ->
      Array.iter
        (fun (r : Network.receiver_id) ->
          if Float.abs (Allocation.rate receiver_based r -. rate) > eps *. Stdlib.max 1.0 rate then
            ok := false)
        (Network.receivers_of_session net i))
    session_rates;
  !ok
