(** A persistent pool of OCaml 5 domains for embarrassingly parallel
    solve tasks.

    The multicore seams in this repo (the batch engine's per-component
    solve tasks, the differential harness's from-scratch reference
    solves, {!Mmfair_protocols.Runner.replicate}'s independent
    replication runs) all reduce to "run these independent thunks,
    then join".  [Domain_pool] owns the domains: spawn once, reuse
    across calls, so repeated batches stop paying [Domain.spawn] cost
    (~tens of µs each) on every epoch.

    {b Determinism contract.}  [run] imposes {e no} structure on the
    tasks beyond completion: callers must make each task a pure
    function writing into its own disjoint slots, so the result is
    identical at every pool size — the batch engine's differential
    gate enforces bitwise-identical allocations for [--domains 1,2,4].
    Probe events emitted inside a task are buffered per task and
    flushed to the submitting domain's sink in task order after the
    join, so the telemetry stream is also independent of the pool size
    and of scheduling (see the span caveat in {!run}).

    {b Exceptions.}  A task that raises does not poison the pool: the
    remaining tasks still run, and after the join the lowest-indexed
    failure is re-raised on the submitting domain.  Solver-contract
    exceptions ({!Solver_error.Error}, [Invalid_argument]) re-raise
    as themselves; anything else is wrapped as
    {!Solver_error.Scheduler_failure} carrying the task's index.

    The pool API is meant to be driven from one coordinating domain
    (the main domain): [run], [shared] and [shutdown] are not
    themselves re-entrant from concurrent domains. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the
    submitting domain is the remaining executor, so [~domains:1]
    spawns nothing and [run] degenerates to [List.iter]).  Raises
    [Invalid_argument] when [domains < 1].  Prefer {!shared} unless
    the pool's lifetime must be scoped — a created pool should be
    {!shutdown} when no longer needed. *)

val domains : t -> int
(** The parallelism this pool offers, counting the submitting
    domain (= 1 + spawned workers). *)

val run : t -> (unit -> unit) list -> unit
(** [run t tasks] executes every task and returns when all have
    completed.  The submitting domain participates, so all [domains t]
    execution streams are used.  Task probe events are buffered and
    flushed in task-index order to the submitting domain's sink after
    the join (worker domains' own sinks stay {!Mmfair_obs.Sink.null});
    span begin/end pairs are therefore stamped at flush time — span
    {e durations} measured through a worker task are not meaningful.
    When a probe sink is installed, one [Mmfair_obs.Events.pool]
    event summarizing the batch (per-task queue wait, busy time,
    per-domain spread) is emitted after the telemetry replay; unlike
    the task streams, its timing payload is genuinely
    scheduling-dependent.  On task failure, see the exception policy
    above.  Raises [Invalid_argument] if the pool has been
    {!shutdown}. *)

val shared : domains:int -> t
(** The process-wide pool of the given size, created on first request
    and cached (one pool per distinct size; idle workers block on a
    condition variable and cost nothing).  All shared pools are shut
    down via an [at_exit] hook registered at module-initialization
    time, so spawned domains never block process termination — and,
    because [at_exit] runs LIFO, every finalizer registered later
    (i.e. any command-scoped telemetry flush) is guaranteed to run
    {e before} the pools tear down.  Call from the coordinating domain
    only. *)

val shutdown_shared : unit -> unit
(** Shut down and evict {e every} cached {!shared} pool; later
    {!shared} calls spawn fresh ones.  Parked workers are cheap but
    not free — each minor collection is a stop-the-world rendezvous
    across all live domains — so a phase that is done with
    multi-domain pools should release them before handing over to a
    latency-sensitive single-domain phase (the churn bench does this
    between its parallel and serving sections).  Idempotent; call
    from the coordinating domain only. *)

val shutdown : t -> unit
(** Join and release the pool's workers.  Idempotent — a second call
    (e.g. an explicit teardown followed by the [at_exit] sweep) is a
    no-op.  Subsequent {!run} calls on a multi-domain pool raise
    [Invalid_argument]; a [~domains:1] pool has no workers and keeps
    working. *)
