module Sink = Mmfair_obs.Sink
module Probe = Mmfair_obs.Probe
module Clock = Mmfair_obs.Clock

(* One submitted batch.  [next] is the claim cursor, [pending] the
   tasks not yet finished; both are protected by the pool mutex.  The
   cells themselves run outside the lock. *)
type batch = {
  cells : (unit -> unit) array;
  mutable next : int;
  mutable pending : int;
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* a batch arrived, or [stop] flipped *)
  finished : Condition.t;  (* [pending] reached 0 *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  n_domains : int;
}

let domains t = t.n_domains

(* Claim and execute tasks until none are claimable.  The mutex is
   held on entry and on exit; each cell runs unlocked.  Cells never
   raise (failures are captured into their slot by the wrapper). *)
let exec_claimable t b =
  while b.next < Array.length b.cells do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.mutex;
    b.cells.(i) ();
    Mutex.lock t.mutex;
    b.pending <- b.pending - 1;
    if b.pending = 0 then Condition.broadcast t.finished
  done

let worker_loop t () =
  Mutex.lock t.mutex;
  let rec loop () =
    if not t.stop then begin
      (match t.batch with
      | Some b when b.next < Array.length b.cells -> exec_claimable t b
      | _ -> Condition.wait t.work t.mutex);
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.mutex

let create ~domains =
  if domains < 1 then
    invalid_arg (Printf.sprintf "Domain_pool.create: domains must be >= 1 (got %d)" domains);
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stop = false;
      workers = [];
      n_domains = domains;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* A sink that defers every event as a closure over the real sink;
   the buffer is mutated only by the domain executing the task and
   read by the submitting domain after the join barrier. *)
let buffering buf =
  let push f = buf := f :: !buf in
  Sink.make
    ~on_round:(fun ev -> push (fun s -> s.Sink.on_round ev))
    ~on_epoch:(fun ev -> push (fun s -> s.Sink.on_epoch ev))
    ~on_batch:(fun ev -> push (fun s -> s.Sink.on_batch ev))
    ~on_sim:(fun ev -> push (fun s -> s.Sink.on_sim ev))
    ~on_span_begin:(fun n -> push (fun s -> s.Sink.on_span_begin n))
    ~on_span_end:(fun n -> push (fun s -> s.Sink.on_span_end n))
    ()

(* Re-raise the lowest-indexed task failure under the documented
   policy: solver-contract exceptions as themselves, anything else as
   a typed scheduler failure carrying the task index. *)
let reraise_first failures =
  Array.iteri
    (fun task fail ->
      match fail with
      | None -> ()
      | Some (Solver_error.Error _ as e) | Some (Invalid_argument _ as e) -> raise e
      | Some e ->
          Solver_error.raise_error
            (Scheduler_failure
               { solver = "Domain_pool"; task; what = Printexc.to_string e }))
    failures

(* Aggregate the per-task timing samples into one pool event.  All
   times are monotonic-clock nanoseconds captured inside the task
   wrapper; [submit] is the instant the batch was formed, so
   start - submit is the task's queue wait and end - start its busy
   time.  Per-domain busy totals are keyed by the executing domain's
   id, then emitted identity-free (sorted descending) — which physical
   domain claimed which task is scheduling noise. *)
let emit_pool_event ~domains ~submit ~starts ~ends ~executors =
  let n = Array.length starts in
  let ns d = Int64.to_float d *. 1e-9 in
  let wait_total = ref 0.0 and wait_max = ref 0.0 in
  let busy_total = ref 0.0 and busy_max = ref 0.0 in
  let by_domain = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let wait = ns (Int64.sub starts.(i) submit) in
    let busy = ns (Int64.sub ends.(i) starts.(i)) in
    wait_total := !wait_total +. wait;
    if wait > !wait_max then wait_max := wait;
    busy_total := !busy_total +. busy;
    if busy > !busy_max then busy_max := busy;
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt by_domain executors.(i)) in
    Hashtbl.replace by_domain executors.(i) (prev +. busy)
  done;
  let busy_by_domain =
    Hashtbl.fold (fun _ busy acc -> busy :: acc) by_domain []
    |> List.sort (fun a b -> compare b a)
    |> Array.of_list
  in
  Probe.pool
    {
      Mmfair_obs.Events.p_domains = domains;
      p_tasks = n;
      p_wall = Clock.since_s submit;
      p_wait_total = !wait_total;
      p_wait_max = !wait_max;
      p_busy_total = !busy_total;
      p_busy_max = !busy_max;
      p_busy_by_domain = busy_by_domain;
    }

let run t tasks =
  match tasks with
  | [] -> ()
  | tasks ->
      let n = List.length tasks in
      let failures = Array.make n None in
      (* Buffer task telemetry only when someone is listening and the
         tasks may land on worker domains; at [domains = 1] every task
         runs here under the caller's own sink, which keeps span
         timestamps meaningful on the sequential path. *)
      let observe = t.n_domains > 1 && Probe.enabled () in
      (* Task timing (queue wait, busy time, per-domain spread) is
         cheaper — four clock reads and three array stores per task —
         and meaningful at every pool size, so it keys off the probe
         flag alone. *)
      let timing = Probe.enabled () in
      let submit = if timing then Clock.now_ns () else 0L in
      let starts = if timing then Array.make n 0L else [||] in
      let ends = if timing then Array.make n 0L else [||] in
      let executors = if timing then Array.make n (-1) else [||] in
      let buffers = if observe then Array.init n (fun _ -> ref []) else [||] in
      let wrap i thunk () =
        if timing then begin
          starts.(i) <- Clock.now_ns ();
          executors.(i) <- (Domain.self () :> int)
        end;
        let body () =
          if observe then Probe.with_sink (buffering buffers.(i)) thunk else thunk ()
        in
        (match body () with () -> () | exception e -> failures.(i) <- Some e);
        if timing then ends.(i) <- Clock.now_ns ()
      in
      let cells = Array.of_list (List.mapi wrap tasks) in
      if t.n_domains = 1 then Array.iter (fun cell -> cell ()) cells
      else begin
        Mutex.lock t.mutex;
        if t.stop then begin
          Mutex.unlock t.mutex;
          invalid_arg "Domain_pool.run: pool has been shut down"
        end;
        (match t.batch with
        | Some _ ->
            Mutex.unlock t.mutex;
            invalid_arg "Domain_pool.run: pool is already running a batch"
        | None -> ());
        let b = { cells; next = 0; pending = n } in
        t.batch <- Some b;
        Condition.broadcast t.work;
        exec_claimable t b;
        while b.pending > 0 do
          Condition.wait t.finished t.mutex
        done;
        t.batch <- None;
        Mutex.unlock t.mutex
      end;
      if observe then begin
        let sink = Probe.get () in
        Array.iter (fun buf -> List.iter (fun emit -> emit sink) (List.rev !buf)) buffers
      end;
      (* After the task-telemetry replay, so the batch's summary event
         follows its constituents in every exporter's stream; emitted
         even when a task failed — the timing is real either way. *)
      if timing then emit_pool_event ~domains:t.n_domains ~submit ~starts ~ends ~executors;
      reraise_first failures

let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

(* The OCaml 5 runtime waits for every live domain at exit, so parked
   workers would hang the process without this hook.  It is registered
   at module-initialization time, NOT lazily on the first [shared]
   call: [at_exit] hooks run LIFO, and every command-scoped finalizer
   (e.g. the CLI telemetry flush in bin/telemetry.ml, churnd's
   snapshot writer) is registered later — at command start — so
   telemetry finalization is guaranteed to run BEFORE the pools tear
   down, whatever order the program first touched them in.  With the
   old first-use registration, a command that installed its telemetry
   hook before ever touching a pool would have torn the pool down
   first. *)
let () = at_exit (fun () -> Hashtbl.iter (fun _ pool -> shutdown pool) shared_pools)

let shared ~domains =
  match Hashtbl.find_opt shared_pools domains with
  | Some pool -> pool
  | None ->
      let pool = create ~domains in
      Hashtbl.add shared_pools domains pool;
      pool

let shutdown_shared () =
  Hashtbl.iter (fun _ pool -> shutdown pool) shared_pools;
  Hashtbl.reset shared_pools
