(** One signature over the whole solver stack.

    The repo grew four independent max-min solvers — the optimized
    water-filling {!Allocator}, its frozen {!Allocator_reference}
    oracle, the session-rate {!Tzeng_siu} comparator and the textbook
    {!Unicast} construction — each with its own ad-hoc entry points.
    [Solve_engine] puts them behind one module type so higher layers
    (the churn engine's batch re-solves, differential harnesses,
    future domain-sharded schedulers) can take a solver as a value and
    stay agnostic about which one they drive.

    This mirrors how rate-balancing work decomposes MMF multicast into
    independently solvable subproblems and how ABR fairness
    definitions are swapped behind a single allocation interface: the
    {e definition} varies, the seam does not. *)

type capabilities = {
  multicast : bool;  (** Accepts sessions with more than one receiver. *)
  multi_rate : bool;  (** Accepts [Multi_rate] sessions. *)
  weighted : bool;  (** Accepts non-unit receiver weights. *)
  vfn : [ `Efficient | `Linear | `Any ];
      (** Most general link-rate family accepted: [`Efficient] (the
          max-shape only), [`Linear] (also [Scaled]/[Additive]),
          [`Any] (monotone [Custom] too). *)
  partial : bool;
      (** Whether {!S.solve_partial} is a genuine warm start.  Engines
          without it reject partial solves; callers holding a fairness
          component should fall back to a full solve. *)
}
(** What a solver engine can take.  Capabilities are {e static}
    honesty about each solver's contract — {!admits} checks a concrete
    network against them before the solver's own validation would
    raise. *)

module type S = sig
  val name : string
  (** The solver tag carried by its probe events
      ({!Mmfair_obs.Events.round}[.solver]): every engine's solve
      narrates its water-filling rounds through the process-wide probe
      ({!Mmfair_obs.Probe}), so telemetry sinks see a uniform stream
      no matter which engine ran. *)

  val capabilities : capabilities

  val solve : Network.t -> Allocation.t
  (** The engine's max-min fair allocation of the network.  Raises
      [Invalid_argument] on a network outside the engine's
      capabilities and {!Solver_error.Error} on solver failure. *)

  val solve_result : Network.t -> (Allocation.t, Solver_error.t) result
  (** Typed-error variant of {!solve}. *)

  val solve_partial :
    sessions:int array -> frozen:float array array -> Network.t -> Allocation.t
  (** Warm-start restricted solve — the contract of
      {!Allocator.max_min_partial}: water-fill only [sessions],
      pinning every other session's receivers at [frozen.(i).(k)].
      Raises [Invalid_argument] when [capabilities.partial] is
      [false]. *)

  val solve_partial_result :
    sessions:int array ->
    frozen:float array array ->
    Network.t ->
    (Allocation.t, Solver_error.t) result
  (** Typed-error variant of {!solve_partial}. *)
end

type t = (module S)
(** A solver as a first-class value. *)

val name : t -> string
val capabilities : t -> capabilities

val admits : t -> Network.t -> bool
(** Whether the network's features (session fan-out, type mapping Φ,
    weights, link-rate functions) fall within the engine's
    capabilities.  When [admits e net] is [false] the network is
    outside the engine's fairness definition: [solve] either rejects
    it with [Invalid_argument] or (for features the solver silently
    ignores, like weights under {!tzeng_siu}) computes an allocation
    that need not agree with {!default}. *)

val allocator : ?engine:Allocator.engine -> unit -> t
(** The optimized incidence-indexed water-filling allocator
    ({!Allocator}); full capabilities including warm-start partial
    solves.  [engine] (default [`Auto]) picks the per-round increment
    computation. *)

val allocator_reference : ?engine:Allocator_reference.engine -> unit -> t
(** The frozen pre-optimization oracle ({!Allocator_reference}) — same
    receiver-rate definition, no partial solves.  Keep for
    differential checks; do not put it on a hot path. *)

val tzeng_siu : t
(** The session-rate max-min definition of the paper's [18]
    ({!Tzeng_siu}): single-rate sessions, efficient link-rate
    functions, unit weights. *)

val unicast : t
(** The Bertsekas–Gallagher unicast construction ({!Unicast}):
    single-receiver sessions, efficient link-rate functions, unit
    weights. *)

val default : t
(** [allocator ()]. *)

val all : unit -> (string * t) list
(** Every engine under its [name], for sweeps and differential
    tests. *)
