(** The min-unfavorable ordering [≼_m] over ordered rate vectors
    (Definition 2) and its Lemma-2 characterization.

    For ordered (ascending) vectors [X] and [Y] of equal length,
    [X ≼_m Y] ("X is min-unfavorable to Y") iff no index has
    [x_i > y_i], or every such index [i] is preceded by some [j < i]
    with [x_j < y_j].  The relation is reflexive, transitive and total
    on equal-length ordered vectors; the max-min fair allocation is
    its unique maximum over the feasible allocations of a network
    (Lemma 1).  Reading: [X ≼_m Y] means [Y] is "more max-min fair"
    than [X]. *)

val sort : float array -> float array
(** Ascending copy — make an arbitrary rate vector "ordered". *)

val is_ordered : float array -> bool

val leq : float array -> float array -> bool
(** [leq x y] is [X ≼_m Y].  Inputs must be ordered and of equal
    length; raises [Invalid_argument] otherwise. *)

val lt : float array -> float array -> bool
(** [lt x y] is [X <_m Y]: [leq x y] and [x ≠ y]. *)

val compare : float array -> float array -> int
(** Total comparison: negative when [X <_m Y], [0] when equal,
    positive when [Y <_m X].  (This is exactly lexicographic order on
    the ordered vectors, which the paper notes is equivalent to
    alphabetization.) *)

val lemma2_threshold : float array -> float array -> float option
(** [lemma2_threshold x y], for ordered equal-length vectors, returns
    the Lemma-2 witness [x₀] when [X <_m Y]: a threshold such that for
    every [z < x₀] the count [|{x_i ≤ z}| ≥ |{y_i ≤ z}|] and strictly
    [|{x_i ≤ x₀}| > |{y_i ≤ x₀}|].  [None] when [not (lt x y)]. *)

val count_at_or_below : float array -> float -> int
(** [count_at_or_below x z = |{x_i : x_i ≤ z}|] for an ordered [x]
    (binary search). *)

val max_min_of : float array list -> float array
(** The maximum of a non-empty list of equal-length vectors under
    [≼_m] (each is sorted first).  Raises [Invalid_argument] on an
    empty list. *)
