(** Session link-rate (redundancy) functions — the paper's [v_i].

    Section 3 of the paper extends a session to carry a {e redundancy
    function} [v_i] mapping the set of receiver rates downstream of a
    link to the session's link rate there:
    [u_{i,j} = v_i {a_{i,k} : r_{i,k} ∈ R_{i,j}}].

    Any valid [v_i] must dominate the max ([v_i X ≥ max X], because
    every byte a receiver gets must traverse its data-path) and should
    be monotone in each rate.  Section 2's idealized multi-rate
    sessions use [v_i = max] (redundancy 1, "efficient"); Section 3's
    layered sessions with imperfect join coordination use larger
    functions; a session with no multicast sharing at all (separate
    unicast connections) uses the sum. *)

type t =
  | Efficient
      (** [v X = max X]: perfect layering, redundancy 1 (Section 2's
          standing assumption). *)
  | Scaled of float
      (** [Scaled v] is [v·max X] for a constant redundancy [v ≥ 1] —
          the form used in Figure 4 and in the Figure-6 fair-rate
          study. *)
  | Additive
      (** [v X = Σ X]: no sharing on the link; models a "multicast"
          session realized as independent unicast connections
          (footnote 3 of the paper). *)
  | Custom of string * (float list -> float)
      (** Arbitrary function with a name for printing.  The caller
          must ensure it dominates max and is monotone; {!apply}
          clamps from below at the max to preserve the paper's
          requirement [u_{i,j} ≥ a_{i,k}]. *)

val apply : t -> float list -> float
(** [apply v rates] is the session link rate for the given downstream
    receiver rates.  Returns [0.] on the empty set.  For [Custom] the
    result is clamped to at least [max rates]. *)

val apply_fold : t -> n:int -> get:(int -> float) -> float
(** [apply_fold v ~n ~get] is [apply v (List.init n get)] without
    building the list for the linear shapes ([Efficient], [Scaled],
    [Additive]) — the allocator's hot loops fold the downstream rates
    directly.  [Custom] functions consume a [float list] by
    construction, so that shape alone still materializes the rates. *)

val name : t -> string
(** Short human-readable name for reports. *)

val dominates : t -> t -> float list -> bool
(** [dominates hi lo rates] checks [apply hi rates ≥ apply lo rates] —
    the hypothesis of the paper's Lemma 4 on one rate set. *)

val is_linear : t -> bool
(** Whether the water-filling allocator may use its exact linear
    engine for sessions with this function ([Efficient], [Scaled],
    [Additive]); [Custom] requires the bisection engine. *)

val pp : Format.formatter -> t -> unit
