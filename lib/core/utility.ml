let rates_of alloc =
  let net = Allocation.network alloc in
  Array.map (fun r -> Allocation.rate alloc r) (Network.all_receivers net)

let check_same_shape a b =
  let ra = rates_of a and rb = rates_of b in
  if Array.length ra <> Array.length rb then
    invalid_arg "Utility: allocations have different receiver counts";
  (ra, rb)

let pareto_dominates ?(eps = 1e-12) a b =
  let ra, rb = check_same_shape a b in
  let ge = ref true and strict = ref false in
  Array.iteri
    (fun i x ->
      if x < rb.(i) -. eps then ge := false;
      if x > rb.(i) +. eps then strict := true)
    ra;
  !ge && !strict

let is_pareto_optimal ?eps a ~among =
  not (List.exists (fun b -> pareto_dominates ?eps b a) among)

let compare_utility a b =
  Ordering.compare (Allocation.ordered_vector a) (Allocation.ordered_vector b)

let utility_rank cands =
  let sorted = List.stable_sort compare_utility cands in
  (* Equal ordered vectors share a rank. *)
  let rec assign rank prev acc = function
    | [] -> List.rev acc
    | a :: rest ->
        let v = Allocation.ordered_vector a in
        let rank = match prev with Some p when p = v -> rank | _ -> rank + 1 in
        assign rank (Some v) ((a, rank) :: acc) rest
  in
  assign (-1) None [] sorted
