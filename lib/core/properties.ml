type fully_utilized_violation = { receiver : Network.receiver_id }
type same_path_violation = {
  first : Network.receiver_id;
  second : Network.receiver_id;
  first_rate : float;
  second_rate : float;
}
type per_receiver_link_violation = { receiver : Network.receiver_id }
type per_session_link_violation = { session : int }

type report = {
  fully_utilized_receiver : fully_utilized_violation list;
  same_path_receiver : same_path_violation list;
  per_receiver_link : per_receiver_link_violation list;
  per_session_link : per_session_link_violation list;
}

let rate_tol eps x = eps *. Stdlib.max 1.0 (Float.abs x)

let at_rho ~eps alloc (r : Network.receiver_id) =
  let net = Allocation.network alloc in
  let rho = Network.rho net r.Network.session in
  Float.is_finite rho && Float.abs (Allocation.rate alloc r -. rho) <= rate_tol eps rho

let fully_utilized_receiver_fair ?(eps = 1e-9) alloc =
  let net = Allocation.network alloc in
  let violations = ref [] in
  Array.iter
    (fun (r : Network.receiver_id) ->
      if not (at_rho ~eps alloc r) then begin
        let a = Allocation.rate alloc r in
        let justified =
          List.exists
            (fun l ->
              Allocation.fully_utilized ~eps alloc l
              && List.for_all
                   (fun r' -> Allocation.rate alloc r' <= a +. rate_tol eps a)
                   (Network.all_on_link net ~link:l))
            (Network.data_path net r)
        in
        if not justified then violations := ({ receiver = r } : fully_utilized_violation) :: !violations
      end)
    (Network.all_receivers net);
  List.rev !violations

let same_path_receiver_fair ?(eps = 1e-9) alloc =
  let net = Allocation.network alloc in
  let receivers = Network.all_receivers net in
  let paths = Array.map (fun r -> List.sort_uniq compare (Network.data_path net r)) receivers in
  let violations = ref [] in
  let n = Array.length receivers in
  for x = 0 to n - 1 do
    for y = x + 1 to n - 1 do
      if paths.(x) = paths.(y) then begin
        let rx = receivers.(x) and ry = receivers.(y) in
        let ax = Allocation.rate alloc rx and ay = Allocation.rate alloc ry in
        let equal = Float.abs (ax -. ay) <= rate_tol eps (Stdlib.max ax ay) in
        (* The lower rate must be pinned at its own session's rho. *)
        let excused =
          (ax < ay && at_rho ~eps alloc rx) || (ay < ax && at_rho ~eps alloc ry)
        in
        if not (equal || excused) then
          violations :=
            { first = rx; second = ry; first_rate = ax; second_rate = ay } :: !violations
      end
    done
  done;
  List.rev !violations

let session_max_on_link ~eps alloc ~session ~link =
  let net = Allocation.network alloc in
  let u = Allocation.session_link_rate alloc ~session ~link in
  let m = Network.session_count net in
  let ok = ref true in
  for i' = 0 to m - 1 do
    if i' <> session then begin
      let u' = Allocation.session_link_rate alloc ~session:i' ~link in
      if u' > u +. rate_tol eps u then ok := false
    end
  done;
  !ok

let per_receiver_link_fair ?(eps = 1e-9) alloc =
  let net = Allocation.network alloc in
  let violations = ref [] in
  Array.iter
    (fun (r : Network.receiver_id) ->
      if not (at_rho ~eps alloc r) then begin
        let justified =
          List.exists
            (fun l ->
              Allocation.fully_utilized ~eps alloc l
              && session_max_on_link ~eps alloc ~session:r.Network.session ~link:l)
            (Network.data_path net r)
        in
        if not justified then violations := { receiver = r } :: !violations
      end)
    (Network.all_receivers net);
  List.rev !violations

let per_session_link_fair ?(eps = 1e-9) alloc =
  let net = Allocation.network alloc in
  let violations = ref [] in
  for i = 0 to Network.session_count net - 1 do
    let all_at_rho =
      Array.for_all (fun r -> at_rho ~eps alloc r) (Network.receivers_of_session net i)
    in
    if not all_at_rho then begin
      let justified =
        List.exists
          (fun l ->
            Allocation.fully_utilized ~eps alloc l && session_max_on_link ~eps alloc ~session:i ~link:l)
          (Network.session_links net i)
      in
      if not justified then violations := { session = i } :: !violations
    end
  done;
  List.rev !violations

let check_all ?eps alloc =
  {
    fully_utilized_receiver = fully_utilized_receiver_fair ?eps alloc;
    same_path_receiver = same_path_receiver_fair ?eps alloc;
    per_receiver_link = per_receiver_link_fair ?eps alloc;
    per_session_link = per_session_link_fair ?eps alloc;
  }

let holds_all ?eps alloc =
  let r = check_all ?eps alloc in
  r.fully_utilized_receiver = [] && r.same_path_receiver = [] && r.per_receiver_link = []
  && r.per_session_link = []

let pp_receiver fmt (r : Network.receiver_id) =
  Format.fprintf fmt "r%d,%d" (r.Network.session + 1) (r.Network.index + 1)

let pp_report fmt r =
  if
    r.fully_utilized_receiver = [] && r.same_path_receiver = [] && r.per_receiver_link = []
    && r.per_session_link = []
  then Format.fprintf fmt "all four fairness properties hold@."
  else begin
    List.iter
      (fun (v : fully_utilized_violation) ->
        Format.fprintf fmt "FP1 (fully-utilized-receiver) violated at %a@." pp_receiver v.receiver)
      r.fully_utilized_receiver;
    List.iter
      (fun v ->
        Format.fprintf fmt "FP2 (same-path-receiver) violated: %a=%g vs %a=%g@." pp_receiver v.first
          v.first_rate pp_receiver v.second v.second_rate)
      r.same_path_receiver;
    List.iter
      (fun (v : per_receiver_link_violation) ->
        Format.fprintf fmt "FP3 (per-receiver-link) violated at %a@." pp_receiver v.receiver)
      r.per_receiver_link;
    List.iter
      (fun (v : per_session_link_violation) ->
        Format.fprintf fmt "FP4 (per-session-link) violated for S%d@." (v.session + 1))
      r.per_session_link
  end
