(** Allocations of receiver rates and derived link usage.

    An allocation assigns every receiver [r_{i,k}] a rate [a_{i,k}].
    From the rates and each session's link-rate function [v_i] we
    derive the session link rates [u_{i,j}] and link rates
    [u_j = Σ_i u_{i,j}], and can test the paper's feasibility
    conditions: [0 ≤ a_{i,k} ≤ ρ_i] for every receiver, [u_j ≤ c_j]
    for every link, and rate equality inside single-rate sessions. *)

type t
(** An immutable allocation bound to its network. *)

val make : Network.t -> float array array -> t
(** [make net rates] with [rates.(i).(k)] the rate of [r_{i,k}].
    Raises [Invalid_argument] on a shape mismatch with the network or
    a negative/NaN rate.  Feasibility is {e not} required — infeasible
    allocations are first-class so that max-min comparisons (Lemma 1)
    and counterexamples can be expressed. *)

val zero : Network.t -> t
(** The all-zero allocation (always feasible). *)

val unsafe_of_rows : Network.t -> float array array -> t
(** [unsafe_of_rows net rates] adopts the row arrays without copying
    or validating them — the churn engine's constructor for rates
    assembled from already-validated rows (solver output and rows
    carried from a previous allocation).  The caller must never mutate
    the rows afterwards; sharing rows between allocations is fine.
    Raises [Invalid_argument] only on a session-count mismatch.
    Everyone else should use {!make}. *)

val network : t -> Network.t

val rate : t -> Network.receiver_id -> float
(** The paper's [a_{i,k}]. *)

val rates_of_session : t -> int -> float array
(** Rates of session [i]'s receivers, index order. *)

val unsafe_rates_of_session : t -> int -> float array
(** Like {!rates_of_session} but returns the live row without copying.
    The caller must not write to it — for the churn engine's row
    carrying, where the per-session copy would reintroduce an
    O(receivers) term per epoch. *)

val unsafe_rows : t -> float array array
(** The live per-session row array itself, no copying at either level.
    The caller must not write to the array or any row — the churn
    engine [Array.copy]s it to seed an epoch's pinned rows in one
    pointer memcpy instead of an O(sessions) closure loop. *)

val session_link_rate : t -> session:int -> link:Mmfair_topology.Graph.link_id -> float
(** The paper's [u_{i,j}] — [v_i] applied to the downstream receiver
    rates on that link ([0.] when the session does not use the link). *)

val link_rate : t -> Mmfair_topology.Graph.link_id -> float
(** The paper's [u_j = Σ_i u_{i,j}]. *)

val fully_utilized : ?eps:float -> t -> Mmfair_topology.Graph.link_id -> bool
(** [u_j ≥ c_j − eps] (default [eps = 1e-9] scaled by capacity). *)

val link_usages : t -> float array
(** Every link's [u_j] in one pass ([usages.(j) = link_rate t j]).
    Callers sweeping all links — the dynamic engine's binding-set and
    boundary scans — should prefer this over per-link {!link_rate}:
    it folds the compact incidence cells inline instead of paying a
    generic fold per cell. *)

val link_redundancy : t -> session:int -> link:Mmfair_topology.Graph.link_id -> float option
(** Definition 3: [u_{i,j} / max{a_{i,k} : r_{i,k} ∈ R_{i,j}}].
    [None] when the session has no receiver crossing the link or the
    maximal downstream rate is zero. *)

type violation =
  | Rate_above_rho of Network.receiver_id
  | Link_overutilized of Mmfair_topology.Graph.link_id
  | Single_rate_mismatch of int
      (** Session index whose receivers' rates differ. *)

val feasibility_violations : ?eps:float -> t -> violation list
(** All ways the allocation breaks feasibility ([eps] is a relative
    tolerance, default [1e-9]).  Empty ⇔ feasible. *)

val is_feasible : ?eps:float -> t -> bool

val ordered_vector : t -> float array
(** All receiver rates sorted ascending — the paper's ordered vector
    for the min-unfavorability relation (Definition 2). *)

val total_throughput : t -> float
(** Sum of all receiver rates. *)

val pp : Format.formatter -> t -> unit
(** Per-session receiver rates and per-link [u_j / c_j]. *)

val pp_violation : Format.formatter -> violation -> unit
