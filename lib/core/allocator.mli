(** The max-min fair allocation — the paper's Appendix-A algorithm,
    generalized.

    Progressive filling: start every receiver at rate 0 and raise the
    rates of all {e active} receivers uniformly as far as feasibility
    allows; freeze a receiver when its session's maximum desired rate
    [ρ_i] is reached or a link on its data-path becomes fully
    utilized; in a single-rate session, freezing any receiver freezes
    the whole session (keeping its rates equal).  Repeat until all
    receivers are frozen.  For any session-type mapping Φ this yields
    the unique max-min fair allocation (the paper's Lemma 5 /
    Corollary 5 in the companion technical report).

    Two engines compute the per-round increment:
    - {e Linear}: exact closed form, valid whenever every session's
      link-rate function is linear in the common active rate
      ([Efficient], [Scaled], [Additive]) — this is the paper's
      Appendix-A step 3.
    - {e Bisection}: binary search on the increment for arbitrary
      monotone [Custom] functions (the paper's Section-3 extension
      where [v_i] is an arbitrary redundancy function).

    [`Auto] (the default) picks Linear exactly when all sessions
    qualify; tests cross-check the engines on networks where both
    apply. *)

type engine = [ `Auto | `Linear | `Bisection ]

type round = {
  increment : float;  (** The round's uniform rate increase [Δt_b]. *)
  frozen : Network.receiver_id list;
      (** Receivers removed from the active set this round. *)
  saturated_links : Mmfair_topology.Graph.link_id list;
      (** Links that became fully utilized this round. *)
}
(** One iteration of the water-filling loop, for tracing/reports.

    Since the telemetry layer landed, [round] values are a {e view} of
    the probe stream: every round the solver executes is emitted as a
    {!Mmfair_obs.Events.round} event (richer — it also carries the
    bottleneck level, active-set size and residual slack), and this
    record is rebuilt from that event.  Constructing [round] lists by
    hand is deprecated; subscribe to the probe stream instead
    ([Mmfair_obs.Probe.with_sink (Mmfair_obs.Sink.make ~on_round ())
    ...]). *)

type result = { allocation : Allocation.t; rounds : round list }

val max_min : ?engine:engine -> Network.t -> Allocation.t
(** [max_min net] is the max-min fair allocation of [net].  Raises
    {!Solver_error.Error} if the algorithm fails to make progress
    (only possible with a misbehaving [Custom] link-rate function that
    is not monotone) and [Invalid_argument] on an engine/network
    mismatch.  Use {!max_min_result} for a non-raising variant. *)

val max_min_trace : ?engine:engine -> Network.t -> result
(** Like {!max_min} but also returns the per-round trace in execution
    order. *)

val max_min_result : ?engine:engine -> Network.t -> (Allocation.t, Solver_error.t) Stdlib.result
(** Typed-error variant of {!max_min}: degenerate inputs and solver
    stalls come back as [Error] instead of an exception, so a sweep
    over many networks can report and skip a bad case.  Never raises
    for any constructed {!Network.t} whose [Custom] link-rate
    functions do not themselves raise. *)

val max_min_trace_result : ?engine:engine -> Network.t -> (result, Solver_error.t) Stdlib.result
(** Typed-error variant of {!max_min_trace}. *)

val max_min_partial :
  ?engine:engine -> sessions:int array -> frozen:float array array -> Network.t -> Allocation.t
(** [max_min_partial ~sessions ~frozen net] is the warm-start entry
    point for incremental re-solves (the churn engine in
    [Mmfair_dynamic]): water-fill only the sessions listed in
    [sessions], holding every other session's receivers fixed at
    [frozen.(i).(k)] as background load from round one.  [frozen] must
    have one row per session of [net]; rows of listed sessions are
    ignored.  Setup, per-round scans and result assembly all touch
    only the listed sessions and the links they cross, so the cost
    scales with the fairness component's neighborhood, not the
    network (the state lives in a per-domain scratch arena reused
    across calls).

    This computes the exact max-min fair allocation of the {e
    restricted} problem (pinned rates as constants).  It equals the
    global [max_min] precisely when no link carrying both solved and
    pinned receivers is saturated in the combined result — the
    fairness-component invariant that [Mmfair_dynamic.Engine]
    establishes before calling (see DESIGN.md §11).

    Because only the component's neighborhood is read, validation is
    scoped the same way: rows of pinned sessions sharing a link with
    the component are checked for shape and for negative/non-finite
    rates, while rows of sessions the solve never reads are adopted
    into the returned allocation {e as-is, without copying or
    validation} — callers must treat pinned rows as immutable once
    passed.  Engine eligibility ([`Auto]'s linear/unit-weight check,
    [`Linear]'s contract) is likewise judged on the involved sessions
    only, so a [Custom] session elsewhere in the network no longer
    forces the component onto the bisection engine.  Raises
    [Invalid_argument] on an unknown session id, a shape mismatch or
    bad pinned rate among the rows it reads, or an engine/component
    mismatch; {!Solver_error.Error} as for {!max_min}. *)

val max_min_partial_result :
  ?engine:engine ->
  sessions:int array ->
  frozen:float array array ->
  Network.t ->
  (Allocation.t, Solver_error.t) Stdlib.result
(** Typed-error variant of {!max_min_partial}. *)

val pp_trace : Format.formatter -> result -> unit
(** Human-readable water-filling narration: one line per round with
    the increment, the links that saturated, and the receivers frozen
    — the Appendix-A execution made visible (used by
    [mmfair allocate --trace]).  Kept as a thin wrapper over the
    probe-derived rounds in [result]; for machine consumption prefer
    the probe stream itself (see {!round}). *)

val bottleneck_links : Allocation.t -> Network.receiver_id -> Mmfair_topology.Graph.link_id list
(** The fully utilized links on a receiver's data-path under the given
    allocation — its max-min bottlenecks.  Empty for a receiver frozen
    by [ρ_i] alone. *)
