type point = {
  rate : float;
  realized : float;
  session_satisfaction : float;
  network_satisfaction : float;
}

let multi_rate_reference net ~session =
  let types =
    Array.init (Network.session_count net) (fun i ->
        if i = session then Network.Multi_rate else Network.session_type net i)
  in
  Allocator.max_min (Network.with_session_types net types)

let sweep net ~session ?(grid = 24) () =
  if session < 0 || session >= Network.session_count net then
    invalid_arg "Single_rate_choice.sweep: unknown session";
  if grid < 1 then invalid_arg "Single_rate_choice.sweep: grid must be >= 1";
  let reference = multi_rate_reference net ~session in
  let receivers = Network.receivers_of_session net session in
  let ref_rate r = Allocation.rate reference r in
  let top = Array.fold_left (fun acc r -> Stdlib.max acc (ref_rate r)) 0.0 receivers in
  let all = Network.all_receivers net in
  let all_ref = Array.map ref_rate all in
  List.init grid (fun i ->
      let rate = top *. float_of_int (i + 1) /. float_of_int grid in
      let candidate =
        Network.with_session_types net
          (Array.init (Network.session_count net) (fun j ->
               if j = session then Network.Single_rate else Network.session_type net j))
      in
      (* pin the session's rho to the candidate rate, respecting the
         session's own rho *)
      let spec = Network.session_spec candidate session in
      let rho = Stdlib.min rate spec.Network.rho in
      let specs =
        Array.init (Network.session_count candidate) (fun j ->
            if j = session then { (Network.session_spec candidate j) with Network.rho }
            else Network.session_spec candidate j)
      in
      let pinned = Network.make (Network.graph net) specs in
      let alloc = Allocator.max_min pinned in
      let realized = Allocation.rate alloc receivers.(0) in
      let sat (r : Network.receiver_id) reference_rate =
        if reference_rate <= 0.0 then 1.0
        else Stdlib.min 1.0 (Allocation.rate alloc r /. reference_rate)
      in
      let session_satisfaction =
        Array.fold_left (fun acc r -> acc +. sat r (ref_rate r)) 0.0 receivers
        /. float_of_int (Array.length receivers)
      in
      let network_satisfaction =
        let total = ref 0.0 in
        Array.iteri (fun k r -> total := !total +. sat r all_ref.(k)) all;
        !total /. float_of_int (Array.length all)
      in
      { rate; realized; session_satisfaction; network_satisfaction })

let optimal net ~session ?grid () =
  let points = sweep net ~session ?grid () in
  List.fold_left
    (fun best p ->
      if
        p.session_satisfaction > best.session_satisfaction +. 1e-12
        || (Float.abs (p.session_satisfaction -. best.session_satisfaction) <= 1e-12
           && p.realized > best.realized)
      then p
      else best)
    (List.hd points) points
