(** The pre-optimization water-filling allocator, frozen as an oracle.

    This is the seed repository's [Allocator] hot path verbatim: every
    round it rescans all links × sessions through the list-based
    [Network.receivers_on_link]/[all_on_link] views and allocates
    intermediate lists per evaluation.  {!Allocator} replaced that with
    the flat incidence index and incremental per-link bookkeeping; this
    module stays behind so that

    - the "optimized allocator equals reference" property test can
      assert rate-level agreement on random networks, and
    - [bench/scaling.exe] can report measured before/after numbers in
      [BENCH_allocator.json].

    Keep it slow and obvious; do not optimize it. *)

type engine = [ `Auto | `Linear | `Bisection ]

val max_min : ?engine:engine -> Network.t -> Allocation.t
(** Same contract as {!Allocator.max_min}, computed by the original
    per-round full rescan.  Raises {!Solver_error.Error} on solver
    stalls, like the optimized engine. *)

val max_min_result : ?engine:engine -> Network.t -> (Allocation.t, Solver_error.t) result
(** Typed-error variant of {!max_min} — same contract as
    {!Allocator.max_min_result}.  The differential fuzz harness runs
    both [_result] entry points side by side and requires agreement on
    every [Ok] case. *)
