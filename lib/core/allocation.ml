module Graph = Mmfair_topology.Graph

type t = { net : Network.t; rates : float array array }

let make net rates =
  if Array.length rates <> Network.session_count net then
    invalid_arg "Allocation.make: session count mismatch";
  Array.iteri
    (fun i per ->
      let spec = Network.session_spec net i in
      if Array.length per <> Array.length spec.Network.receivers then
        invalid_arg (Printf.sprintf "Allocation.make: receiver count mismatch in session %d" i);
      Array.iter
        (fun a ->
          if Float.is_nan a || a < 0.0 then
            invalid_arg (Printf.sprintf "Allocation.make: bad rate in session %d" i))
        per)
    rates;
  { net; rates = Array.map Array.copy rates }

(* Churn-path constructor: adopts the rows without copying or
   validating them.  The dynamic engine assembles each epoch's rates
   from rows that are already proven — the solver's fresh output plus
   rows carried verbatim from the previous (validated) allocation — so
   re-walking every receiver here would put an O(receivers) term back
   on a path the batch engine keeps proportional to the touched
   component.  Callers must never mutate the rows afterwards. *)
let unsafe_of_rows net rates =
  if Array.length rates <> Network.session_count net then
    invalid_arg "Allocation.unsafe_of_rows: session count mismatch";
  { net; rates }

let zero net =
  {
    net;
    rates =
      Array.init (Network.session_count net) (fun i ->
          Array.make (Array.length (Network.session_spec net i).Network.receivers) 0.0);
  }

let network t = t.net

let rate t (r : Network.receiver_id) = t.rates.(r.Network.session).(r.Network.index)

let rates_of_session t i = Array.copy t.rates.(i)

(* No-copy view for the dynamic engine's row carrying; callers must
   treat the result as read-only. *)
let unsafe_rates_of_session t i = t.rates.(i)

(* The live outer array, for bulk row carrying ([Array.copy] on the
   caller's side is one pointer memcpy instead of a per-session loop);
   read-only like the rows themselves. *)
let unsafe_rows t = t.rates

(* Fold a compact incidence cell directly: [link_rate] is swept over
   every link by feasibility checks and the dynamic engine's
   saturation scans, so it must not materialize per-cell lists and
   must skip (link, session) pairs nobody crosses. *)
let cell_rate t inc c =
  let i = inc.Network.cell_session.(c) in
  let lo = inc.Network.cell_first.(c) in
  Redundancy_fn.apply_fold (Network.vfn t.net i)
    ~n:(inc.Network.cell_first.(c + 1) - lo)
    ~get:(fun j ->
      let r = inc.Network.receiver_of_gid.(inc.Network.link_cells.(lo + j)) in
      t.rates.(r.Network.session).(r.Network.index))

let session_link_rate t ~session ~link =
  if session < 0 || session >= Network.session_count t.net then
    invalid_arg "Allocation.session_link_rate: unknown session";
  if link < 0 || link >= Graph.link_count (Network.graph t.net) then
    invalid_arg "Allocation.session_link_rate: unknown link";
  let inc = Network.incidence t.net in
  let rate = ref 0.0 in
  let c = ref inc.Network.link_row.(link) in
  let hi = inc.Network.link_row.(link + 1) in
  while !c < hi do
    let s = inc.Network.cell_session.(!c) in
    if s = session then begin
      rate := cell_rate t inc !c;
      c := hi
    end
    else if s > session then c := hi
    else incr c
  done;
  !rate

let link_rate t link =
  let inc = Network.incidence t.net in
  let s = ref 0.0 in
  for c = inc.Network.link_row.(link) to inc.Network.link_row.(link + 1) - 1 do
    s := !s +. cell_rate t inc c
  done;
  !s

let fully_utilized ?(eps = 1e-9) t link =
  let c = Graph.capacity (Network.graph t.net) link in
  link_rate t link >= c -. (eps *. Stdlib.max 1.0 c)

(* All links' usages in one pass over the compact cells.  The dynamic
   engine sweeps every link twice per epoch (previous-epoch binding
   set, then the post-solve boundary check); per-link [link_rate]
   calls pay a closure-based fold per cell, which dominates the
   incremental path's budget.  Here the three built-in link-rate
   shapes are folded inline; only [Custom] falls back to the generic
   fold. *)
let link_usages t =
  let inc = Network.incidence t.net in
  let nl = Graph.link_count (Network.graph t.net) in
  let usages = Array.make (Stdlib.max nl 1) 0.0 in
  let session_first = inc.Network.session_first in
  (* Flat per-gid rates so the inner loop does one load per receiver. *)
  let flat = Array.make (Stdlib.max inc.Network.n_receivers 1) 0.0 in
  Array.iteri
    (fun i per -> Array.blit per 0 flat session_first.(i) (Array.length per))
    t.rates;
  let vfns = Array.init (Network.session_count t.net) (Network.vfn t.net) in
  let link_cells = inc.Network.link_cells in
  let cell_first = inc.Network.cell_first in
  for l = 0 to nl - 1 do
    let s = ref 0.0 in
    for c = inc.Network.link_row.(l) to inc.Network.link_row.(l + 1) - 1 do
      let lo = cell_first.(c) and hi = cell_first.(c + 1) in
      (s :=
         !s
         +.
         match vfns.(inc.Network.cell_session.(c)) with
         | Redundancy_fn.Efficient ->
             let mx = ref 0.0 in
             for p = lo to hi - 1 do
               let a = flat.(link_cells.(p)) in
               if a > !mx then mx := a
             done;
             !mx
         | Redundancy_fn.Scaled k ->
             let mx = ref 0.0 in
             for p = lo to hi - 1 do
               let a = flat.(link_cells.(p)) in
               if a > !mx then mx := a
             done;
             k *. !mx
         | Redundancy_fn.Additive ->
             let sum = ref 0.0 in
             for p = lo to hi - 1 do
               sum := !sum +. flat.(link_cells.(p))
             done;
             !sum
         | Redundancy_fn.Custom _ -> cell_rate t inc c)
    done;
    usages.(l) <- !s
  done;
  usages

let link_redundancy t ~session ~link =
  let downstream = Network.receivers_on_link t.net ~session ~link in
  match downstream with
  | [] -> None
  | _ ->
      let efficient = List.fold_left (fun acc r -> Stdlib.max acc (rate t r)) 0.0 downstream in
      if efficient <= 0.0 then None
      else Some (session_link_rate t ~session ~link /. efficient)

type violation =
  | Rate_above_rho of Network.receiver_id
  | Link_overutilized of Graph.link_id
  | Single_rate_mismatch of int

let feasibility_violations ?(eps = 1e-9) t =
  let net = t.net in
  let g = Network.graph net in
  let violations = ref [] in
  for i = Network.session_count net - 1 downto 0 do
    let rho = Network.rho net i in
    let per = t.rates.(i) in
    Array.iteri
      (fun k a ->
        if a > rho +. (eps *. Stdlib.max 1.0 rho) then
          violations := Rate_above_rho { Network.session = i; index = k } :: !violations)
      per;
    (match Network.session_type net i with
    | Network.Multi_rate -> ()
    | Network.Single_rate ->
        let base = per.(0) in
        let tol = eps *. Stdlib.max 1.0 base in
        if Array.exists (fun a -> Float.abs (a -. base) > tol) per then
          violations := Single_rate_mismatch i :: !violations)
  done;
  for l = Graph.link_count g - 1 downto 0 do
    let c = Graph.capacity g l in
    if link_rate t l > c +. (eps *. Stdlib.max 1.0 c) then
      violations := Link_overutilized l :: !violations
  done;
  !violations

let is_feasible ?eps t = feasibility_violations ?eps t = []

let ordered_vector t =
  let all = Array.concat (Array.to_list t.rates) in
  Array.sort compare all;
  all

let total_throughput t = Array.fold_left (fun acc per -> Array.fold_left ( +. ) acc per) 0.0 t.rates

let pp fmt t =
  let g = Network.graph t.net in
  Array.iteri
    (fun i per ->
      Format.fprintf fmt "S%d:" (i + 1);
      Array.iteri (fun k a -> Format.fprintf fmt " a%d,%d=%g" (i + 1) (k + 1) a) per;
      Format.fprintf fmt "@.")
    t.rates;
  for l = 0 to Graph.link_count g - 1 do
    Format.fprintf fmt "l%d: u=%g / c=%g%s@." l (link_rate t l) (Graph.capacity g l)
      (if fully_utilized t l then " (full)" else "")
  done

let pp_violation fmt = function
  | Rate_above_rho r ->
      Format.fprintf fmt "receiver r%d,%d exceeds its session's rho" (r.Network.session + 1)
        (r.Network.index + 1)
  | Link_overutilized l -> Format.fprintf fmt "link l%d over capacity" l
  | Single_rate_mismatch i -> Format.fprintf fmt "single-rate session S%d has unequal rates" (i + 1)
