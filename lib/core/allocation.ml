module Graph = Mmfair_topology.Graph

type t = { net : Network.t; rates : float array array }

let make net rates =
  if Array.length rates <> Network.session_count net then
    invalid_arg "Allocation.make: session count mismatch";
  Array.iteri
    (fun i per ->
      let spec = Network.session_spec net i in
      if Array.length per <> Array.length spec.Network.receivers then
        invalid_arg (Printf.sprintf "Allocation.make: receiver count mismatch in session %d" i);
      Array.iter
        (fun a ->
          if Float.is_nan a || a < 0.0 then
            invalid_arg (Printf.sprintf "Allocation.make: bad rate in session %d" i))
        per)
    rates;
  { net; rates = Array.map Array.copy rates }

let zero net =
  {
    net;
    rates =
      Array.init (Network.session_count net) (fun i ->
          Array.make (Array.length (Network.session_spec net i).Network.receivers) 0.0);
  }

let network t = t.net

let rate t (r : Network.receiver_id) = t.rates.(r.Network.session).(r.Network.index)

let rates_of_session t i = Array.copy t.rates.(i)

let session_link_rate t ~session ~link =
  let downstream = Network.receivers_on_link t.net ~session ~link in
  match downstream with
  | [] -> 0.0
  | _ ->
      let rates = List.map (fun r -> rate t r) downstream in
      Redundancy_fn.apply (Network.vfn t.net session) rates

let link_rate t link =
  let m = Network.session_count t.net in
  let s = ref 0.0 in
  for i = 0 to m - 1 do
    s := !s +. session_link_rate t ~session:i ~link
  done;
  !s

let fully_utilized ?(eps = 1e-9) t link =
  let c = Graph.capacity (Network.graph t.net) link in
  link_rate t link >= c -. (eps *. Stdlib.max 1.0 c)

let link_redundancy t ~session ~link =
  let downstream = Network.receivers_on_link t.net ~session ~link in
  match downstream with
  | [] -> None
  | _ ->
      let efficient = List.fold_left (fun acc r -> Stdlib.max acc (rate t r)) 0.0 downstream in
      if efficient <= 0.0 then None
      else Some (session_link_rate t ~session ~link /. efficient)

type violation =
  | Rate_above_rho of Network.receiver_id
  | Link_overutilized of Graph.link_id
  | Single_rate_mismatch of int

let feasibility_violations ?(eps = 1e-9) t =
  let net = t.net in
  let g = Network.graph net in
  let violations = ref [] in
  for i = Network.session_count net - 1 downto 0 do
    let rho = Network.rho net i in
    let per = t.rates.(i) in
    Array.iteri
      (fun k a ->
        if a > rho +. (eps *. Stdlib.max 1.0 rho) then
          violations := Rate_above_rho { Network.session = i; index = k } :: !violations)
      per;
    (match Network.session_type net i with
    | Network.Multi_rate -> ()
    | Network.Single_rate ->
        let base = per.(0) in
        let tol = eps *. Stdlib.max 1.0 base in
        if Array.exists (fun a -> Float.abs (a -. base) > tol) per then
          violations := Single_rate_mismatch i :: !violations)
  done;
  for l = Graph.link_count g - 1 downto 0 do
    let c = Graph.capacity g l in
    if link_rate t l > c +. (eps *. Stdlib.max 1.0 c) then
      violations := Link_overutilized l :: !violations
  done;
  !violations

let is_feasible ?eps t = feasibility_violations ?eps t = []

let ordered_vector t =
  let all = Array.concat (Array.to_list t.rates) in
  Array.sort compare all;
  all

let total_throughput t = Array.fold_left (fun acc per -> Array.fold_left ( +. ) acc per) 0.0 t.rates

let pp fmt t =
  let g = Network.graph t.net in
  Array.iteri
    (fun i per ->
      Format.fprintf fmt "S%d:" (i + 1);
      Array.iteri (fun k a -> Format.fprintf fmt " a%d,%d=%g" (i + 1) (k + 1) a) per;
      Format.fprintf fmt "@.")
    t.rates;
  for l = 0 to Graph.link_count g - 1 do
    Format.fprintf fmt "l%d: u=%g / c=%g%s@." l (link_rate t l) (Graph.capacity g l)
      (if fully_utilized t l then " (full)" else "")
  done

let pp_violation fmt = function
  | Rate_above_rho r ->
      Format.fprintf fmt "receiver r%d,%d exceeds its session's rho" (r.Network.session + 1)
        (r.Network.index + 1)
  | Link_overutilized l -> Format.fprintf fmt "link l%d over capacity" l
  | Single_rate_mismatch i -> Format.fprintf fmt "single-rate session S%d has unequal rates" (i + 1)
