let sort x =
  let c = Array.copy x in
  Array.sort Float.compare c;
  c

let is_ordered x =
  let ok = ref true in
  for i = 1 to Array.length x - 1 do
    if x.(i - 1) > x.(i) then ok := false
  done;
  !ok

let check name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Ordering.%s: length mismatch" name);
  if not (is_ordered x && is_ordered y) then
    invalid_arg (Printf.sprintf "Ordering.%s: inputs must be ordered" name)

(* X ≼m Y iff at every index where x exceeds y, some earlier index had
   x below y — a single left-to-right scan. *)
let leq x y =
  check "leq" x y;
  let seen_less = ref false in
  let ok = ref true in
  Array.iteri
    (fun i xi ->
      if !ok then begin
        if xi > y.(i) && not !seen_less then ok := false;
        if xi < y.(i) then seen_less := true
      end)
    x;
  !ok

let lt x y = leq x y && x <> y

let compare x y =
  check "compare" x y;
  (* ≼m on ordered vectors coincides with lexicographic order. *)
  let n = Array.length x in
  let rec go i =
    if i = n then 0
    else if x.(i) < y.(i) then -1
    else if x.(i) > y.(i) then 1
    else go (i + 1)
  in
  go 0

let count_at_or_below x z =
  (* Largest index with x.(i) <= z, plus one. *)
  let n = Array.length x in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x.(mid) <= z then lo := mid + 1 else hi := mid
  done;
  !lo

let lemma2_threshold x y =
  check "lemma2_threshold" x y;
  if not (lt x y) then None
  else begin
    (* The first index where the vectors differ has x.(i) < y.(i)
       (lexicographic view); x₀ = x.(i) works: counts at z < x₀ agree
       or favor x, and at x₀ the count for x strictly exceeds y's. *)
    let n = Array.length x in
    let rec first_diff i = if x.(i) <> y.(i) then i else first_diff (i + 1) in
    let i = first_diff 0 in
    assert (i < n && x.(i) < y.(i));
    Some x.(i)
  end

let max_min_of = function
  | [] -> invalid_arg "Ordering.max_min_of: empty list"
  | first :: rest ->
      List.fold_left (fun best v -> let v = sort v in if compare best v < 0 then v else best)
        (sort first) rest
