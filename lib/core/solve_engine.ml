type capabilities = {
  multicast : bool;
  multi_rate : bool;
  weighted : bool;
  vfn : [ `Efficient | `Linear | `Any ];
  partial : bool;
}

module type S = sig
  val name : string
  val capabilities : capabilities
  val solve : Network.t -> Allocation.t
  val solve_result : Network.t -> (Allocation.t, Solver_error.t) result

  val solve_partial :
    sessions:int array -> frozen:float array array -> Network.t -> Allocation.t

  val solve_partial_result :
    sessions:int array ->
    frozen:float array array ->
    Network.t ->
    (Allocation.t, Solver_error.t) result
end

type t = (module S)

let name (module E : S) = E.name
let capabilities (module E : S) = E.capabilities

let admits (module E : S) net =
  let caps = E.capabilities in
  let m = Network.session_count net in
  let vfn_ok v =
    match caps.vfn with
    | `Any -> true
    | `Linear -> Redundancy_fn.is_linear v
    | `Efficient -> ( match v with Redundancy_fn.Efficient -> true | _ -> false)
  in
  let rec check i =
    i >= m
    || (let spec = Network.session_spec net i in
        (caps.multicast || Array.length spec.Network.receivers <= 1)
        && (caps.multi_rate || spec.Network.session_type = Network.Single_rate)
        && vfn_ok spec.Network.vfn)
       && check (i + 1)
  in
  (caps.weighted || Network.all_weights_unit net) && check 0

(* Shared scaffolding for engines whose underlying solver has no
   warm-start entry point: [solve_partial] fails loudly instead of
   silently degrading to a full solve, so callers (the churn engine's
   batch path) make the fallback decision explicitly off
   [capabilities.partial]. *)
let no_partial name : sessions:int array -> frozen:float array array -> Network.t -> Allocation.t
    =
 fun ~sessions:_ ~frozen:_ _ ->
  invalid_arg (name ^ ".solve_partial: engine has no warm-start entry point")

let allocator ?(engine = `Auto) () : t =
  (module struct
    let name = "Allocator"

    let capabilities =
      { multicast = true; multi_rate = true; weighted = true; vfn = `Any; partial = true }

    let solve net = Allocator.max_min ~engine net
    let solve_result net = Allocator.max_min_result ~engine net

    let solve_partial ~sessions ~frozen net =
      Allocator.max_min_partial ~engine ~sessions ~frozen net

    let solve_partial_result ~sessions ~frozen net =
      Allocator.max_min_partial_result ~engine ~sessions ~frozen net
  end)

let allocator_reference ?(engine = `Auto) () : t =
  (module struct
    let name = "Allocator_reference"

    let capabilities =
      { multicast = true; multi_rate = true; weighted = true; vfn = `Any; partial = false }

    let solve net = Allocator_reference.max_min ~engine net
    let solve_result net = Allocator_reference.max_min_result ~engine net
    let solve_partial = no_partial name

    let solve_partial_result ~sessions ~frozen net =
      Solver_error.protect ~solver:name (fun () -> solve_partial ~sessions ~frozen net)
  end)

let tzeng_siu : t =
  (module struct
    let name = "Tzeng_siu"

    let capabilities =
      {
        multicast = true;
        multi_rate = false;
        weighted = false;
        vfn = `Efficient;
        partial = false;
      }

    let solve net = Tzeng_siu.to_allocation net (Tzeng_siu.max_min_session_rates net)

    let solve_result net =
      Result.map (Tzeng_siu.to_allocation net) (Tzeng_siu.max_min_session_rates_result net)

    let solve_partial = no_partial name

    let solve_partial_result ~sessions ~frozen net =
      Solver_error.protect ~solver:name (fun () -> solve_partial ~sessions ~frozen net)
  end)

let unicast : t =
  (module struct
    let name = "Unicast"

    let capabilities =
      {
        multicast = false;
        multi_rate = true;
        weighted = false;
        vfn = `Efficient;
        partial = false;
      }

    let expand net rates = Allocation.make net (Array.map (fun r -> [| r |]) rates)
    let solve net = expand net (Unicast.max_min_flow_rates net)
    let solve_result net = Result.map (expand net) (Unicast.max_min_flow_rates_result net)
    let solve_partial = no_partial name

    let solve_partial_result ~sessions ~frozen net =
      Solver_error.protect ~solver:name (fun () -> solve_partial ~sessions ~frozen net)
  end)

let default = allocator ()

let all () =
  [ allocator (); allocator_reference (); tzeng_siu; unicast ]
  |> List.map (fun e -> (name e, e))
