(** Fairness components: the coupled region of a perturbation.

    When one session's situation changes (membership, [ρ], a link
    capacity), the max-min fair allocation only moves inside the
    transitive closure of the touched sessions over {e binding} links
    — links with (almost) no slack, where a rate change propagates to
    every session crossing.  Everything outside keeps its old rates
    and can be frozen as background load in a warm-start restricted
    solve (the fairness-component argument of DESIGN.md §11).

    This module owns the component machinery — the closure, the
    binding-link predicate, and the boundary scan that drives the
    expansion loop to a sound fixed point — so both the per-event
    churn engine and the batch coalescer in [Mmfair_dynamic] (and any
    future domain-sharded scheduler) share one audited implementation.

    A component is session-granular: single-rate coupling and the
    max-shape of the [Efficient]/[Scaled] link-rate functions tie a
    session's receivers together, so sessions join or stay out
    whole. *)

val eps_bind : float
(** Relative slack below which a link counts as binding ([1e-7]).
    Wider than the solvers' [1e-9] working tolerance on purpose: a
    link within [eps_bind] (relative) of saturation joins the coupling
    graph, so float drift between an incremental and a from-scratch
    solve stays well inside the differential gate. *)

type t
(** A growing set of sessions of one network. *)

val create : Network.t -> t
(** The empty component of the network.  The network fixes both the
    session universe and the link incidence the closure walks — pass
    the {e post-surgery} network when growing a component for a
    re-solve. *)

val network : t -> Network.t
val mem : t -> int -> bool
val cardinal : t -> int
(** Number of sessions inside. *)

val is_empty : t -> bool
val is_full : t -> bool
(** Whether every session of the network is inside. *)

val fill : t -> unit
(** Put every session inside (the full-solve case). *)

val sessions : t -> int array
(** The member sessions, ascending. *)

val groups : t -> int array list
(** The member sessions partitioned into {e disjoint} groups: two
    members land in the same group iff one was absorbed through a
    binding link touching the other (transitively) — separately-seeded
    closures that never met stay separate.  Groups are ordered by
    their smallest session, members ascending within.  Disjoint
    groups share no binding link, so their restricted solves are
    independent sub-problems; the batch engine hands each to its own
    scheduler task and re-checks the split against the merged
    candidate with {!group_boundary_links}. *)

val group_boundary_links :
  t ->
  binding:(Mmfair_topology.Graph.link_id -> bool) ->
  int array ->
  Mmfair_topology.Graph.link_id list
(** {!boundary_links} restricted to one group of {!groups}: the links
    that are saturated (per [binding]) and carry both a receiver of
    the group and a receiver outside it — where "outside" includes
    {e other groups'} members, so a link two groups both lean on is
    flagged and absorbing it merges them.  The empty list certifies
    the group's restricted solve against everything it was frozen
    against. *)

val receiver_count : t -> int
(** Total receivers over the member sessions. *)

val binding : Allocation.t -> Mmfair_topology.Graph.link_id -> bool
(** [binding alloc] is a memoized per-link predicate: is the link
    within {!eps_bind} (relative) of saturation under [alloc]?  Usages
    are judged against the allocation's {e own} network's capacities —
    for a pre-surgery allocation those are the pre-surgery capacities,
    which is what its binding set means.  Lazy on purpose: the closure
    and the boundary scan only ever ask about links the member
    sessions cross, so sweeping every link's usage up front
    ([Allocation.link_usages]) would waste most of an incremental
    re-solve's budget. *)

val absorb : t -> binding:(Mmfair_topology.Graph.link_id -> bool) -> int -> unit
(** [absorb t ~binding i] grows the component by session [i] and
    everything reachable from it across binding links (transitive).
    [binding] answers for the coupling allocation — the previous
    epoch's, or [fun l -> old l || new_ l] during boundary expansion;
    session membership on links is read from the component's
    network. *)

val absorb_link :
  t -> binding:(Mmfair_topology.Graph.link_id -> bool) -> Mmfair_topology.Graph.link_id -> unit
(** [absorb_link t ~binding l] absorbs every session crossing [l]
    (with their closures) — but only if [binding l] holds.  Used to
    seed from a departed receiver's old path: its links are gone from
    the session's new link set, yet their freed capacity lets
    bystanders rise. *)

val boundary_links :
  t -> binding:(Mmfair_topology.Graph.link_id -> bool) -> Mmfair_topology.Graph.link_id list
(** The links that violate the restricted-solve invariant: saturated
    (per [binding], which should answer for the {e candidate}
    allocation) and carrying both a member and a non-member receiver.
    A restricted solve is the global optimum precisely when this list
    is empty; otherwise absorb the boundary links' sessions and
    re-solve (DESIGN.md §11).  Scans only the member sessions' paths
    straight off the incidence CSR, not every link of the network. *)
