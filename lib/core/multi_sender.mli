(** Multi-sender multicast sessions — the paper's Section-5 extension.

    "It would also be interesting and useful to extend definitions of
    fairness to multicast sessions with multiple senders."

    A multi-sender session replicates the content at several sender
    nodes; each receiver fetches from its {e nearest} sender
    (minimum-hop, ties broken toward the lowest sender index),
    shortening data-paths and relieving shared links.  Because the
    paper's max-min fairness (Definition 1) is defined over {e
    receiver} rates, the definition carries over unchanged; what
    changes is the link-usage structure: the session's link rate
    decomposes per sender subtree,
    [u_{i,j} = Σ_s v_i {a_{i,k} : k assigned to s, l_j ∈ path(s, r_{i,k})}].

    That decomposition is exactly a set of single-sender sub-sessions
    sharing the original session's [ρ] and [v_i], so {!expand} lowers
    a multi-sender network onto the core {!Network} model and the
    Appendix-A allocator computes its max-min fair allocation
    directly.  Only multi-rate sessions are supported: a single-rate
    constraint coupling receivers {e across} senders has no canonical
    water-filling semantics (the sub-sessions would need to freeze as
    one unit even though their bottlenecks are disjoint), and the
    paper does not define one. *)

type spec = {
  senders : Mmfair_topology.Graph.node array;  (** ≥ 1 replica locations. *)
  receivers : Mmfair_topology.Graph.node array;
  rho : float;
  vfn : Redundancy_fn.t;
}

val spec :
  ?rho:float -> ?vfn:Redundancy_fn.t ->
  senders:Mmfair_topology.Graph.node array ->
  receivers:Mmfair_topology.Graph.node array ->
  unit -> spec

type t
(** An expanded multi-sender network. *)

val expand : Mmfair_topology.Graph.t -> spec array -> t
(** Assigns every receiver to its nearest sender (skipping senders
    colocated on the receiver's own node, which the model's τ
    restriction forbids) and builds the underlying {!Network} with one
    sub-session per (session, used sender) pair.  Raises
    [Invalid_argument] when a spec has no senders/receivers or a
    receiver can reach no eligible sender. *)

val network : t -> Network.t
(** The lowered single-sender network (for properties, ordering and
    any other core analysis). *)

val session_count : t -> int
(** Number of {e original} multi-sender sessions. *)

val assignment : t -> session:int -> int array
(** [assignment t ~session] maps each receiver index of the original
    session to the index (into [spec.senders]) of its assigned
    sender. *)

val receiver_id : t -> session:int -> receiver:int -> Network.receiver_id
(** The lowered network's id for an original (session, receiver)
    pair. *)

val max_min : ?engine:Allocator.engine -> t -> Allocation.t
(** The max-min fair allocation of the lowered network. *)

val rate : t -> Allocation.t -> session:int -> receiver:int -> float
(** A receiver's rate under an allocation of the lowered network. *)
