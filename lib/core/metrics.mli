(** Scalar fairness and efficiency metrics over allocations.

    The min-unfavorable ordering is the paper's yardstick, but
    comparisons across papers use scalar indexes; this module provides
    the standard ones so experiment tables can report them alongside
    the [≼_m] verdicts:

    - {e Jain's fairness index} [(Σa)²/(n·Σa²)] — 1 when all equal;
    - {e min rate} and {e aggregate throughput} — the two poles the
      max-min compromise trades between;
    - {e receiver satisfaction} in the sense of Legout et al. [7]
      (cited in Section 5 / related work): each receiver's rate
      relative to a reference ("isolated") allocation, averaged. *)

val jain_index : Allocation.t -> float
(** Jain's index over all receiver rates.  1 for the empty or all-zero
    allocation by convention. *)

val min_rate : Allocation.t -> float
(** Smallest receiver rate. *)

val throughput : Allocation.t -> float
(** Sum of receiver rates (same as {!Allocation.total_throughput}). *)

val isolated_rates : Network.t -> float array
(** Each receiver's max-min fair rate when its session is {e alone}
    in the network (all other sessions removed) — the natural
    satisfaction reference: no allocation can do better for that
    receiver.  Order matches {!Network.all_receivers}. *)

val satisfaction : ?reference:float array -> Allocation.t -> float
(** Mean over receivers of [min 1 (a / reference)] — "receiver
    satisfaction".  Default reference: {!isolated_rates}.  Receivers
    whose reference is 0 count as fully satisfied. *)

val summary : Allocation.t -> (string * float) list
(** [("jain", …); ("min-rate", …); ("throughput", …);
    ("satisfaction", …)] for quick table rows. *)
