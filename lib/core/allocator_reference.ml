(* The pre-incidence-index water-filling allocator, kept verbatim as a
   frozen oracle: it recomputes every link×session cell from the
   list-based [Network] views on every round.  The optimized
   [Allocator] must match it to within float tolerance — see the
   "optimized allocator equals reference" property test and
   bench/scaling.ml's before/after columns.  Do not optimize this
   module. *)

module Graph = Mmfair_topology.Graph
module Obs = Mmfair_obs

type engine = [ `Auto | `Linear | `Bisection ]

let tol_for x = 1e-9 *. Stdlib.max 1.0 (Float.abs x)

let session_usage_at net rates active ~session ~link t =
  let downstream = Network.receivers_on_link net ~session ~link in
  match downstream with
  | [] -> 0.0
  | _ ->
      let rate_of (r : Network.receiver_id) =
        if active.(r.Network.session).(r.Network.index) then Network.weight net r *. t
        else rates.(r.Network.session).(r.Network.index)
      in
      Redundancy_fn.apply (Network.vfn net session) (List.map rate_of downstream)

let link_usage_at net rates active ~link t =
  let m = Network.session_count net in
  let s = ref 0.0 in
  for i = 0 to m - 1 do
    s := !s +. session_usage_at net rates active ~session:i ~link t
  done;
  !s

let linear_bound net rates active t_cur =
  let g = Network.graph net in
  let m = Network.session_count net in
  let bound = ref infinity in
  for link = 0 to Graph.link_count g - 1 do
    let const = ref 0.0 and slope = ref 0.0 in
    for i = 0 to m - 1 do
      let downstream = Network.receivers_on_link net ~session:i ~link in
      if downstream <> [] then begin
        let n_active = ref 0 and max_frozen = ref 0.0 and sum_frozen = ref 0.0 in
        List.iter
          (fun (r : Network.receiver_id) ->
            if active.(r.Network.session).(r.Network.index) then incr n_active
            else begin
              let a = rates.(r.Network.session).(r.Network.index) in
              if a > !max_frozen then max_frozen := a;
              sum_frozen := !sum_frozen +. a
            end)
          downstream;
        match Network.vfn net i with
        | Redundancy_fn.Efficient ->
            if !n_active > 0 then slope := !slope +. 1.0 else const := !const +. !max_frozen
        | Redundancy_fn.Scaled v ->
            if !n_active > 0 then slope := !slope +. v else const := !const +. (v *. !max_frozen)
        | Redundancy_fn.Additive ->
            const := !const +. !sum_frozen;
            slope := !slope +. float_of_int !n_active
        | Redundancy_fn.Custom _ ->
            invalid_arg "Allocator_reference: linear engine on non-linear session link-rate function"
      end
    done;
    if !slope > 0.0 then begin
      let b = (Graph.capacity g link -. !const) /. !slope in
      if b < !bound then bound := b
    end
  done;
  Stdlib.max !bound t_cur

let bisection_bound net rates active t_cur rho_bound =
  let g = Network.graph net in
  let feasible t =
    let ok = ref true in
    for link = 0 to Graph.link_count g - 1 do
      let c = Graph.capacity g link in
      if link_usage_at net rates active ~link t > c +. tol_for c then ok := false
    done;
    !ok
  in
  let max_cap = Graph.fold_links g ~init:0.0 ~f:(fun acc l -> Stdlib.max acc (Graph.capacity g l)) in
  let min_weight = ref infinity in
  Array.iteri
    (fun i per ->
      Array.iteri
        (fun k is_active ->
          if is_active then
            min_weight := Stdlib.min !min_weight (Network.weight net { Network.session = i; index = k }))
        per)
    active;
  let weight_floor = if Float.is_finite !min_weight && !min_weight > 0.0 then !min_weight else 1.0 in
  let hi = Stdlib.min rho_bound (t_cur +. (max_cap /. weight_floor) +. 1.0) in
  if not (feasible t_cur) then t_cur
  else if feasible hi then hi
  else Mmfair_numerics.Bisect.sup_satisfying feasible t_cur hi

let solver_name = "Allocator_reference"

let run engine net =
  let g = Network.graph net in
  let m = Network.session_count net in
  let rates = Array.init m (fun i -> Array.map (fun _ -> 0.0) (Network.session_spec net i).Network.receivers) in
  let active = Array.map (Array.map (fun _ -> true)) rates in
  let all_linear =
    let ok = ref true in
    for i = 0 to m - 1 do
      if not (Redundancy_fn.is_linear (Network.vfn net i)) then ok := false
    done;
    !ok
  in
  let unit_weights = Network.all_weights_unit net in
  let use_linear =
    match engine with
    | `Linear ->
        if not all_linear then
          invalid_arg "Allocator_reference.max_min: linear engine requires linear link-rate functions";
        if not unit_weights then
          invalid_arg "Allocator_reference.max_min: linear engine requires unit weights";
        true
    | `Bisection -> false
    | `Auto -> all_linear && unit_weights
  in
  let any_active () = Array.exists (Array.exists Fun.id) active in
  let t_cur = ref 0.0 in
  let round_no = ref 0 in
  let last_slack = ref infinity in
  let guard = ref (Network.receiver_count net + Graph.link_count g + 2) in
  while any_active () do
    decr guard;
    incr round_no;
    if !guard < 0 then
      Solver_error.raise_error
        (Solver_error.stalled ~solver:solver_name
           ~vfns:(Array.init m (Network.vfn net))
           ~round:!round_no ~residual_slack:!last_slack);
    let rho_bound = ref infinity in
    for i = 0 to m - 1 do
      let rho = Network.rho net i in
      Array.iteri
        (fun k is_active ->
          if is_active then
            rho_bound :=
              Stdlib.min !rho_bound (rho /. Network.weight net { Network.session = i; index = k }))
        active.(i)
    done;
    let t_new =
      if use_linear then Stdlib.min (linear_bound net rates active !t_cur) !rho_bound
      else bisection_bound net rates active !t_cur !rho_bound
    in
    let t_new = Stdlib.max t_new !t_cur in
    Array.iteri
      (fun i per ->
        Array.iteri
          (fun k is_active ->
            if is_active then
              rates.(i).(k) <- Network.weight net { Network.session = i; index = k } *. t_new)
          per)
      active;
    let saturated = ref [] in
    let min_slack = ref infinity and min_slack_link = ref (-1) in
    for link = Graph.link_count g - 1 downto 0 do
      let c = Graph.capacity g link in
      let u = link_usage_at net rates active ~link t_new in
      let slack = c -. u in
      if slack <= tol_for c then saturated := link :: !saturated;
      if slack < !min_slack && Network.all_on_link net ~link |> List.exists (fun (r : Network.receiver_id) -> active.(r.Network.session).(r.Network.index))
      then begin
        min_slack := slack;
        min_slack_link := link
      end
    done;
    last_slack := !min_slack;
    let saturated_set = !saturated in
    let on_saturated (r : Network.receiver_id) =
      List.exists (fun l -> Network.crosses net r l) saturated_set
    in
    let frozen = ref [] in
    let freeze (r : Network.receiver_id) =
      if active.(r.Network.session).(r.Network.index) then begin
        active.(r.Network.session).(r.Network.index) <- false;
        frozen := r :: !frozen
      end
    in
    for i = 0 to m - 1 do
      let rho = Network.rho net i in
      Array.iteri
        (fun k is_active ->
          if is_active then begin
            let r = { Network.session = i; index = k } in
            if Network.weight net r *. t_new >= rho -. tol_for rho then begin
              rates.(i).(k) <- rho;
              freeze r
            end
            else if on_saturated r then freeze r
          end)
        active.(i)
    done;
    if !frozen = [] then begin
      if !min_slack_link < 0 then begin
        let nan_link = ref None in
        for link = Graph.link_count g - 1 downto 0 do
          if not (Float.is_finite (link_usage_at net rates active ~link t_new)) then
            nan_link := Some link
        done;
        Solver_error.raise_error
          (Solver_error.Stuck_link
             { solver = solver_name; round = !round_no; link = !nan_link; residual_slack = !min_slack })
      end;
      List.iter
        (fun (r : Network.receiver_id) ->
          if active.(r.Network.session).(r.Network.index) then freeze r)
        (Network.all_on_link net ~link:!min_slack_link)
    end;
    for i = 0 to m - 1 do
      if Network.session_type net i = Network.Single_rate then begin
        let any_frozen = Array.exists (fun b -> not b) active.(i) in
        if any_frozen then
          Array.iteri
            (fun k is_active -> if is_active then freeze { Network.session = i; index = k })
            active.(i)
      end
    done;
    (* Probe emission only — the reference oracle stays un-optimized
       (see module header), so the event is built from the list-based
       state it already has, and only when somebody listens. *)
    if Obs.Probe.enabled () then begin
      let n_active =
        Array.fold_left
          (fun acc per -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc per)
          0 active
      in
      Obs.Probe.round
        {
          Obs.Events.solver = solver_name;
          round = !round_no;
          level = t_new;
          increment = t_new -. !t_cur;
          active = n_active;
          frozen =
            List.rev_map
              (fun (r : Network.receiver_id) ->
                (r.Network.session, r.Network.index, rates.(r.Network.session).(r.Network.index)))
              !frozen;
          saturated_links = saturated_set;
          bottleneck_link = (if !min_slack_link >= 0 then Some !min_slack_link else None);
          residual_slack = !min_slack;
        }
    end;
    t_cur := t_new
  done;
  Allocation.make net rates

let max_min ?(engine = `Auto) net = run engine net

let max_min_result ?(engine = `Auto) net =
  Solver_error.protect ~solver:solver_name (fun () -> run engine net)
