let normalized_vector alloc =
  let net = Allocation.network alloc in
  let all =
    Array.map
      (fun r -> Allocation.rate alloc r /. Network.weight net r)
      (Network.all_receivers net)
  in
  Array.sort compare all;
  all

let weights_from_rtts rtts =
  Array.map
    (fun rtt ->
      if not (rtt > 0.0) then invalid_arg "Weighted.weights_from_rtts: RTT must be positive";
      1.0 /. rtt)
    rtts

type violation = {
  first : Network.receiver_id;
  second : Network.receiver_id;
  first_normalized : float;
  second_normalized : float;
}

let rate_tol eps x = eps *. Stdlib.max 1.0 (Float.abs x)

let at_rho ~eps alloc (r : Network.receiver_id) =
  let net = Allocation.network alloc in
  let rho = Network.rho net r.Network.session in
  Float.is_finite rho && Float.abs (Allocation.rate alloc r -. rho) <= rate_tol eps rho

let same_path_weighted_fair ?(eps = 1e-9) alloc =
  let net = Allocation.network alloc in
  let receivers = Network.all_receivers net in
  let paths = Array.map (fun r -> List.sort_uniq compare (Network.data_path net r)) receivers in
  let norm r = Allocation.rate alloc r /. Network.weight net r in
  let violations = ref [] in
  let n = Array.length receivers in
  for x = 0 to n - 1 do
    for y = x + 1 to n - 1 do
      if paths.(x) = paths.(y) then begin
        let rx = receivers.(x) and ry = receivers.(y) in
        let nx = norm rx and ny = norm ry in
        let equal = Float.abs (nx -. ny) <= rate_tol eps (Stdlib.max nx ny) in
        let excused = (nx < ny && at_rho ~eps alloc rx) || (ny < nx && at_rho ~eps alloc ry) in
        if not (equal || excused) then
          violations :=
            { first = rx; second = ry; first_normalized = nx; second_normalized = ny } :: !violations
      end
    done
  done;
  List.rev !violations

type unjustified = { receiver : Network.receiver_id }

let fully_utilized_weighted_fair ?(eps = 1e-9) alloc =
  let net = Allocation.network alloc in
  let norm r = Allocation.rate alloc r /. Network.weight net r in
  let violations = ref [] in
  Array.iter
    (fun (r : Network.receiver_id) ->
      if not (at_rho ~eps alloc r) then begin
        let nr = norm r in
        let justified =
          List.exists
            (fun l ->
              Allocation.fully_utilized ~eps alloc l
              && List.for_all (fun r' -> norm r' <= nr +. rate_tol eps nr) (Network.all_on_link net ~link:l))
            (Network.data_path net r)
        in
        if not justified then violations := { receiver = r } :: !violations
      end)
    (Network.all_receivers net);
  List.rev !violations

let holds_all ?eps alloc =
  same_path_weighted_fair ?eps alloc = [] && fully_utilized_weighted_fair ?eps alloc = []
