(** Typed failures of the allocator stack.

    Every solver entry point ({!Allocator}, {!Allocator_reference},
    {!Tzeng_siu}, {!Unicast}) has a [_result] variant returning
    [(value, t) result] instead of raising, so one malformed network in
    an experiment sweep is reported and skipped rather than killing the
    whole run.  The classic entry points remain as thin wrappers that
    raise {!Error} (solver failures) or [Invalid_argument] (malformed
    inputs rejected before the solve starts).

    Each variant carries enough context to reproduce and report the
    failure: which solver, which round of water-filling, and the
    offending link/session plus the residual slack observed when the
    solve stopped. *)

type t =
  | Invalid_input of { solver : string; what : string }
      (** The input violates the solver's contract (malformed network,
          engine/network mismatch, shape mismatch).  [what] is a
          human-readable diagnostic. *)
  | No_progress of { solver : string; round : int; residual_slack : float }
      (** The water-filling loop exhausted its round budget without
          freezing every receiver.  [residual_slack] is the tightest
          link slack seen in the last completed round. *)
  | Stuck_link of {
      solver : string;
      round : int;
      link : Mmfair_topology.Graph.link_id option;
      residual_slack : float;
    }
      (** A round froze nothing and no candidate link could be found to
          force progress — in practice a session link-rate function
          returned NaN, making every slack comparison vacuous.  [link]
          is the first link whose usage was non-finite, when one could
          be identified. *)
  | Non_monotone_vfn of { solver : string; session : int; round : int }
      (** Progress stalled and session [session] uses a [Custom]
          link-rate function — the prime suspect, since the allocator's
          termination argument requires monotone usage in the common
          rate. *)
  | Scheduler_failure of { solver : string; task : int; what : string }
      (** A scheduler (the batch engine's solve-task seam, or a
          {!Domain_pool} worker) failed to complete solve task [task]:
          it dropped the task without running it, or the task raised
          an exception the solver contract does not cover — [what] is
          the dropped-task diagnostic or the worker exception,
          re-raised on the joining domain with the task's index as
          context.  Solver-contract exceptions ({!Error},
          [Invalid_argument]) raised inside a pooled task are {e not}
          wrapped: they re-raise as themselves. *)

exception Error of t
(** Raised by the classic (non-[_result]) solver entry points on solver
    failure. *)

val solver : t -> string
(** The solver that produced the error ("Allocator",
    "Allocator_reference", "Tzeng_siu", "Unicast"). *)

val to_string : t -> string
(** One-line human-readable rendering, e.g.
    ["Allocator: stuck at round 3: no candidate link (residual slack nan); a session link-rate function likely returned NaN"]. *)

val pp : Format.formatter -> t -> unit
(** {!to_string} as a formatter. *)

val raise_error : t -> 'a
(** [raise_error e] raises [Error e]. *)

val of_exn : solver:string -> exn -> t option
(** Map the exceptions a solver's raising path produces back to a typed
    error: [Error e] gives [Some e]; [Invalid_argument msg] and
    [Failure msg] give [Some (Invalid_input _)]; anything else is
    [None] (genuine bugs keep propagating). *)

val protect : solver:string -> (unit -> 'a) -> ('a, t) result
(** [protect ~solver f] runs [f ()] and converts the raising contract
    to the [result] contract via {!of_exn}; unrecognized exceptions
    propagate. *)

val stalled :
  solver:string -> vfns:Redundancy_fn.t array -> round:int -> residual_slack:float -> t
(** The error for an exhausted water-filling round budget: blames the
    first non-linear ([Custom]) link-rate function as
    {!Non_monotone_vfn} when one exists (a monotone usage model cannot
    stall), and reports {!No_progress} otherwise. *)
