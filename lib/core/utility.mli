(** Utility and Pareto views of max-min fairness (footnote 4).

    The paper notes that instead of the [≼_m] ordering one can build a
    utility function [U] over allocations with
    [U(A) < U(B) ⟺ A <_m B], under which the max-min fair allocation
    is Pareto-optimal.  This module provides the Pareto machinery and
    a comparison-based realization of that utility (as a total order;
    a real-valued [U] with this property exists for any finite
    feasible set, and {!utility_rank} constructs one for an explicit
    candidate list). *)

val pareto_dominates : ?eps:float -> Allocation.t -> Allocation.t -> bool
(** [pareto_dominates a b]: allocation [a] gives every receiver at
    least [b]'s rate and at least one receiver strictly more.  Both
    must be allocations of the same network (receiver-for-receiver
    comparison); raises [Invalid_argument] otherwise. *)

val is_pareto_optimal : ?eps:float -> Allocation.t -> among:Allocation.t list -> bool
(** No allocation in [among] Pareto-dominates the given one. *)

val compare_utility : Allocation.t -> Allocation.t -> int
(** The footnote's utility as a comparison: negative iff the first
    allocation is strictly min-unfavorable to the second
    ([A <_m B ⟺ U(A) < U(B)]).  Works on allocations of networks
    with equal receiver counts. *)

val utility_rank : Allocation.t list -> (Allocation.t * int) list
(** [utility_rank cands] assigns each candidate an integer utility
    consistent with {!compare_utility} (equal vectors share a rank) —
    an explicit finite [U].  The max-min fair allocation, when
    present, gets the maximal rank. *)
