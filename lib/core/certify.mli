(** Max-min fairness certificates.

    Definition 1 quantifies over {e all} alternative feasible
    allocations, so it cannot be checked directly.  For all-multi-rate
    networks with efficient link-rate functions it is equivalent to a
    locally checkable condition — the receiver-level bottleneck
    characterization (the multicast analogue of Bertsekas &
    Gallagher's unicast result, and exactly the paper's Fairness
    Property 1):

    a feasible allocation is max-min fair iff every receiver is at its
    session's [ρ_i] or crosses a fully utilized link on which no
    receiver (of any session) has a strictly larger rate.

    Sufficiency follows the paper's Theorem-1 argument: if receiver
    [r] could be raised, its bottleneck link's capacity forces some
    session's link rate down, hence some receiver with rate
    [≤ a_r] down — exactly Definition 1's condition.  Necessity is
    Theorem 1 itself.  This module produces the per-receiver
    witnesses, so "this allocation is max-min fair" comes with an
    auditable certificate rather than a yes/no answer. *)

type witness =
  | At_rho                            (** [a_{i,k} = ρ_i]. *)
  | Bottleneck of Mmfair_topology.Graph.link_id
      (** A fully utilized link on the receiver's data-path where its
          rate is maximal among all receivers crossing it. *)

type verdict =
  | Certified of (Network.receiver_id * witness) list
      (** Feasible and every receiver has a witness: max-min fair. *)
  | Infeasible of Allocation.violation list
  | Uncertified of Network.receiver_id list
      (** Feasible but these receivers lack witnesses: not max-min
          fair (some of them can be raised). *)

val check : ?eps:float -> Allocation.t -> verdict
(** Certify an allocation of an all-multi-rate, efficient network.
    Raises [Invalid_argument] if some session is single-rate or uses a
    non-[Efficient] link-rate function (the characterization does not
    apply there — use {!Allocator.max_min} and the ordering lemmas
    instead). *)

val is_max_min : ?eps:float -> Allocation.t -> bool
(** [check] collapsed to a boolean. *)
