type witness = At_rho | Bottleneck of Mmfair_topology.Graph.link_id

type verdict =
  | Certified of (Network.receiver_id * witness) list
  | Infeasible of Allocation.violation list
  | Uncertified of Network.receiver_id list

let validate net =
  for i = 0 to Network.session_count net - 1 do
    if Network.session_type net i <> Network.Multi_rate then
      invalid_arg "Certify: all sessions must be multi-rate";
    (match Network.vfn net i with
    | Redundancy_fn.Efficient -> ()
    | _ -> invalid_arg "Certify: sessions must use the efficient link-rate function")
  done

let rate_tol eps x = eps *. Stdlib.max 1.0 (Float.abs x)

let witness_for ~eps alloc (r : Network.receiver_id) =
  let net = Allocation.network alloc in
  let a = Allocation.rate alloc r in
  let rho = Network.rho net r.Network.session in
  if Float.is_finite rho && Float.abs (a -. rho) <= rate_tol eps rho then Some At_rho
  else
    List.find_map
      (fun l ->
        if
          Allocation.fully_utilized ~eps alloc l
          && List.for_all
               (fun r' -> Allocation.rate alloc r' <= a +. rate_tol eps a)
               (Network.all_on_link net ~link:l)
        then Some (Bottleneck l)
        else None)
      (Network.data_path net r)

let check ?(eps = 1e-9) alloc =
  let net = Allocation.network alloc in
  validate net;
  match Allocation.feasibility_violations ~eps alloc with
  | _ :: _ as violations -> Infeasible violations
  | [] ->
      let witnesses = ref [] and missing = ref [] in
      Array.iter
        (fun r ->
          match witness_for ~eps alloc r with
          | Some w -> witnesses := (r, w) :: !witnesses
          | None -> missing := r :: !missing)
        (Network.all_receivers net);
      if !missing = [] then Certified (List.rev !witnesses) else Uncertified (List.rev !missing)

let is_max_min ?eps alloc = match check ?eps alloc with Certified _ -> true | _ -> false
