(** The [mmfair churnd] serving loop.

    A daemon wraps one incremental churn engine
    ({!Mmfair_dynamic.Engine}) and feeds it from a byte stream — a
    pipe/FIFO ({!serve_fd}) or a Unix-domain socket with any number of
    concurrent clients ({!serve_socket}) — speaking the {!Protocol}
    line language.

    {b Coalescing.}  Events arriving between wakeups queue up; each
    wakeup drains the queue into {e one} [Batch.apply] epoch, so a
    burst of joins costs one union-component re-solve instead of one
    per event (the engine's whole point).  [batch ... end] blocks stay
    atomic through coalescing.  [max_batch] caps how much one epoch
    may swallow; rate/epoch queries flush first, so answers are never
    stale.

    {b Staleness.}  At every flush the age of the oldest queued event
    (monotonic clock) lands in the [serve.staleness.seconds] histogram
    and the [serve.staleness.max.seconds] high-water gauge — the bound
    the bench gate holds the daemon to.

    {b Failure isolation.}  A malformed line answers
    [err line N: ...] and the loop continues.  A queued event the
    evolving network rejects (or a solver failure) fails only its own
    item: the coalesced epoch is retried item by item and survivors
    still land.

    {b Signals and teardown.}  While serving, SIGINT/SIGTERM flip the
    stop flag (the poll loop notices within [poll_interval]) and
    SIGPIPE is ignored so a dead client surfaces as [EPIPE] on its own
    write.  Previous dispositions are restored when the serve call
    returns.  The engine's shared {!Mmfair_core.Domain_pool} is torn
    down by its module-init [at_exit] hook, which runs {e after} any
    later-registered telemetry finalizer — snapshot writers may still
    query the registry after serving ends. *)

type config = {
  engine : Mmfair_core.Allocator.engine;  (** Water-filling engine (default [`Auto]). *)
  domains : int;  (** Component-solve parallelism ({!Mmfair_dynamic.Engine.create}). *)
  retain : int;  (** Epoch-store window ({!Mmfair_dynamic.Store.create}). *)
  max_batch : int;  (** Most events one coalesced epoch may apply (default 256). *)
  ack : bool;  (** Answer [ok epoch N] per accepted ingestion line (default off). *)
  poll_interval : float;  (** Seconds between stop-flag polls when idle (default 0.05). *)
  write_timeout : float;
      (** How long a socket client's full send buffer may stall a
          response write before the client is dropped (default 5.0). *)
  sample_interval : float;
      (** Seconds between time-series sampler ticks (default 1.0);
          [<= 0] disables sampling entirely ([series] queries then
          answer zero windows). *)
  series_capacity : int;
      (** Windows retained per time series before downsampling halves
          them (default 512).  Must be >= 2. *)
  series_out : string option;
      (** When set, every sampler tick is also appended to this JSONL
          file ([mmfair.series/v1]: one header line per daemon start,
          then one [{"t":…,"sample":{…}}] line per tick, flushed per
          line).  The file is opened at {!create}. *)
}

val default_config : config

type t

val create : ?config:config -> Mmfair_workload.Net_parser.t -> (t, Mmfair_core.Solver_error.t) result
(** Solve epoch 0 and stand the daemon up (no I/O yet; the
    [series_out] appender, if any, is opened and its header written —
    a bad path fails here, not mid-soak).  Raises [Invalid_argument]
    when [config.max_batch < 1], [config.write_timeout <= 0] or
    [config.series_capacity < 2]; [Sys_error] on an unopenable
    [series_out] path. *)

val engine : t -> Mmfair_dynamic.Engine.t
(** The underlying engine (current network, allocation, epoch store). *)

val registry : t -> Mmfair_obs.Registry.t
(** The daemon's metrics: [serve.events.ingested.total],
    [serve.events.rejected.total], [serve.queries.total],
    [serve.epochs.total], [serve.connections.total], the
    [serve.solve.seconds] and [serve.staleness.seconds] {e log}
    histograms (quantile-capable, geometric buckets over
    [\[1e-6, 10)] / [\[1e-6, 100)] seconds) and the
    [serve.staleness.max.seconds] gauge — plus the standard
    [dynamic.*]/[fairness.*]/[pool.*] instruments bridged from the
    engine's probe stream while serving. *)

val series : t -> Mmfair_obs.Timeseries.t
(** The daemon's in-memory time series (fed by the sampler; empty when
    [sample_interval <= 0] and {!sample} is never called). *)

val snapshot : t -> Mmfair_obs.Json.t
(** {!Mmfair_obs.Registry.snapshot} of {!registry}. *)

val prometheus : t -> string
(** {!Mmfair_obs.Registry.to_prometheus} of {!registry}. *)

val stop : t -> unit
(** Ask the serve loop to finish (signal-handler safe: one atomic
    store).  The loop notices within [poll_interval], flushes queued
    events, and returns. *)

val stopped : t -> bool

val flush : t -> unit
(** Apply queued events as one coalesced epoch now.  Called by the
    serve loops at each wakeup and before answering rate/epoch
    queries; exposed for tests. *)

val sample : t -> unit
(** Take one time-series sampler tick now (GC gauges refreshed, the
    registry's flat readout appended to every series, the tick
    mirrored to [series_out] if configured).  The serve loops call
    this on the [sample_interval] cadence; exposed for tests. *)

val serve_fd : t -> input:Unix.file_descr -> output:Unix.file_descr -> unit
(** Serve one pre-connected stream (pipe, FIFO, stdin/stdout) until
    EOF, a [quit] line, or {!stop}.  Responses go to [output]. *)

val serve_socket : t -> path:string -> unit
(** Listen on a Unix-domain socket (an existing file at [path] is
    replaced; the path is unlinked on the way out) and serve clients
    until {!stop}.  Clients come and go freely; each gets its own line
    numbering and [batch] block state, while churn events from all of
    them coalesce into shared epochs.  A client that stops reading
    (its full send buffer stalls a response write for longer than
    [config.write_timeout]) is dropped; the other connections and the
    daemon itself live on. *)
