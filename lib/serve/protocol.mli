(** The churnd line protocol: churn events plus queries.

    Every input line is either a [.churn] directive (the
    {!Mmfair_workload.Churn_parser} grammar, verbatim — including
    [batch ... end] blocks and [#] comments) or one of the serving
    extensions:

    {v
    rate SESSION NODE   -> rate FLOAT
    rates               -> rates K epoch E, then K lines "SESSION NODE FLOAT"
    epoch               -> epoch E
    metrics [json]      -> metrics {...}          (one-line JSON snapshot)
    metrics prom        -> metrics prom N, then N Prometheus text lines
    stats               -> stats {...}            (one-line JSON headline summary)
    series METRIC [W]   -> series METRIC K, then K lines "T COUNT MIN MAX MEAN LAST"
    quit                -> bye                    (close this connection)
    v}

    [series] returns the daemon's in-memory time-series windows for
    one sampled metric (see [Mmfair_obs.Timeseries]), oldest first,
    optionally restricted to the last [W] windows; an unknown metric
    (or a daemon with sampling disabled) answers [series METRIC 0].

    Rate and epoch queries flush any coalesced-but-unapplied events
    first, so answers are never stale; a rejected line answers
    [err line N: ...] and the connection lives on. *)

type query =
  | Rate of { session : string; node : string }
  | Rates
  | Epoch
  | Metrics of [ `Json | `Prometheus ]
  | Stats
  | Series of { name : string; window : int option }

type command =
  | Churn of Mmfair_workload.Churn_parser.line
  | Query of query
  | Quit

val parse : Mmfair_workload.Net_parser.t -> lineno:int -> string -> command
(** Classify one raw line.  Query keywords are matched first; anything
    else falls through to {!Mmfair_workload.Churn_parser.parse_line}.
    Raises {!Mmfair_workload.Churn_parser.Parse_error} (carrying
    [lineno]) on a malformed query or churn directive. *)
