type t = {
  read : bytes -> int -> int -> int;
  chunk : bytes;
  acc : Buffer.t;  (* the trailing partial line, terminator not yet seen *)
  lines : string Queue.t;  (* complete lines, terminators stripped *)
  mutable eof : bool;
  mutable drained : bool;  (* the post-EOF partial has been surfaced *)
}

let create ?(buf_size = 4096) read =
  if buf_size < 1 then
    invalid_arg (Printf.sprintf "Line_reader.create: buf_size must be >= 1 (got %d)" buf_size);
  {
    read;
    chunk = Bytes.create buf_size;
    acc = Buffer.create 256;
    lines = Queue.create ();
    eof = false;
    drained = false;
  }

let of_fd ?buf_size fd =
  create ?buf_size (fun buf pos len ->
      let rec go () =
        match Unix.read fd buf pos len with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ())

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* Absorb [n] fresh bytes from [t.chunk]: every '\n' completes the line
   accumulated so far (possibly spanning many reads), the remainder
   stays in [acc] for the next read. *)
let absorb t n =
  let start = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.get t.chunk i = '\n' then begin
      Buffer.add_subbytes t.acc t.chunk !start (i - !start);
      Queue.add (strip_cr (Buffer.contents t.acc)) t.lines;
      Buffer.clear t.acc;
      start := i + 1
    end
  done;
  Buffer.add_subbytes t.acc t.chunk !start (n - !start)

let refill t =
  if t.eof then `Eof
  else
    let n = t.read t.chunk 0 (Bytes.length t.chunk) in
    if n = 0 then begin
      t.eof <- true;
      `Eof
    end
    else begin
      absorb t n;
      `Data
    end

let pending_line t =
  match Queue.take_opt t.lines with
  | Some line -> Some line
  | None ->
      if t.eof && (not t.drained) && Buffer.length t.acc > 0 then begin
        t.drained <- true;
        let line = strip_cr (Buffer.contents t.acc) in
        Buffer.clear t.acc;
        Some line
      end
      else None

let at_eof t =
  t.eof && Queue.is_empty t.lines && (t.drained || Buffer.length t.acc = 0)

let rec next_line t =
  match pending_line t with
  | Some _ as line -> line
  | None -> ( match refill t with `Data -> next_line t | `Eof -> pending_line t)
