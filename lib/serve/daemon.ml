module Network = Mmfair_core.Network
module Allocation = Mmfair_core.Allocation
module Solver_error = Mmfair_core.Solver_error
module Engine = Mmfair_dynamic.Engine
module Batch = Mmfair_dynamic.Batch
module Event = Mmfair_dynamic.Event
module Net_parser = Mmfair_workload.Net_parser
module Churn_parser = Mmfair_workload.Churn_parser
module Registry = Mmfair_obs.Registry
module Timeseries = Mmfair_obs.Timeseries
module Probe = Mmfair_obs.Probe
module Sink = Mmfair_obs.Sink
module Clock = Mmfair_obs.Clock
module Json = Mmfair_obs.Json

type config = {
  engine : Mmfair_core.Allocator.engine;
  domains : int;
  retain : int;
  max_batch : int;
  ack : bool;
  poll_interval : float;
  write_timeout : float;
  sample_interval : float;
  series_capacity : int;
  series_out : string option;
}

let default_config =
  {
    engine = `Auto;
    domains = 1;
    retain = 8;
    max_batch = 256;
    ack = false;
    poll_interval = 0.05;
    write_timeout = 5.0;
    sample_interval = 1.0;
    series_capacity = 512;
    series_out = None;
  }

(* One queued ingestion item: a lone event or a whole [batch ... end]
   block (blocks stay atomic through coalescing and fallback). *)
type pending = { events : Event.t list; lineno : int; respond : string -> unit }

type t = {
  config : config;
  parsed : Net_parser.t;
  engine : Engine.t;
  registry : Registry.t;
  stop : bool Atomic.t;
  mutable queue : pending list;  (* newest first *)
  mutable queued_events : int;
  mutable first_arrival : int64 option;  (* of the oldest queued event *)
  ingested : Registry.counter;
  rejected : Registry.counter;
  queries : Registry.counter;
  epochs : Registry.counter;
  connections : Registry.counter;
  solve_h : Registry.log_histogram;
  staleness_h : Registry.log_histogram;
  staleness_max : Registry.gauge;
  series : Timeseries.t;
  series_oc : out_channel option;
  mutable last_sample : float;  (* monotonic seconds of the last sampler tick; 0 = never *)
}

let create ?(config = default_config) parsed =
  if config.max_batch < 1 then
    invalid_arg
      (Printf.sprintf "Daemon.create: max_batch must be >= 1 (got %d)" config.max_batch);
  if config.write_timeout <= 0.0 then
    invalid_arg
      (Printf.sprintf "Daemon.create: write_timeout must be > 0 (got %g)" config.write_timeout);
  if config.series_capacity < 2 then
    invalid_arg
      (Printf.sprintf "Daemon.create: series_capacity must be >= 2 (got %d)"
         config.series_capacity);
  match
    Engine.create_result ~engine:config.engine ~domains:config.domains ~retain:config.retain
      parsed.Net_parser.net
  with
  | Error _ as e -> e
  | Ok engine ->
      let registry = Registry.create () in
      (* The appender opens eagerly so a bad path fails daemon startup,
         not the first sampler tick mid-soak.  Each daemon run opens
         its own header line; consumers skip lines carrying "schema". *)
      let series_oc =
        Option.map
          (fun path ->
            let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
            output_string oc (Timeseries.header_line ^ "\n");
            Stdlib.flush oc;
            oc)
          config.series_out
      in
      Ok
        {
          config;
          parsed;
          engine;
          registry;
          stop = Atomic.make false;
          queue = [];
          queued_events = 0;
          first_arrival = None;
          ingested = Registry.counter registry "serve.events.ingested.total";
          rejected = Registry.counter registry "serve.events.rejected.total";
          queries = Registry.counter registry "serve.queries.total";
          epochs = Registry.counter registry "serve.epochs.total";
          connections = Registry.counter registry "serve.connections.total";
          (* Log buckets: the old linear [0,0.1)/[0,1.0) ranges dumped
             every slow solve into the overflow tally on large networks
             or loaded hosts, so soaks could not report a p99. *)
          solve_h = Registry.log_histogram registry ~lo:1e-6 ~hi:10.0 ~bins:42 "serve.solve.seconds";
          staleness_h =
            Registry.log_histogram registry ~lo:1e-6 ~hi:100.0 ~bins:48 "serve.staleness.seconds";
          staleness_max = Registry.gauge registry "serve.staleness.max.seconds";
          series = Timeseries.create ~capacity:config.series_capacity ();
          series_oc;
          last_sample = 0.0;
        }

let engine t = t.engine
let registry t = t.registry
let snapshot t = Registry.snapshot t.registry
let prometheus t = Registry.to_prometheus t.registry
let stop t = Atomic.set t.stop true
let stopped t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* Ingestion: queue, coalesce, flush as one epoch.                     *)

let flush t =
  match t.queue with
  | [] -> ()
  | newest_first ->
      let items = List.rev newest_first in
      t.queue <- [];
      t.queued_events <- 0;
      (match t.first_arrival with
      | Some t0 ->
          let staleness = Clock.since_s t0 in
          Registry.observe_log t.staleness_h staleness;
          Registry.set_max t.staleness_max staleness
      | None -> ());
      t.first_arrival <- None;
      let apply items events =
        let t0 = Clock.now_ns () in
        match Batch.apply_result t.engine events with
        | Ok _ ->
            Registry.observe_log t.solve_h (Clock.since_s t0);
            Registry.incr t.epochs;
            if t.config.ack then begin
              let e = Engine.epoch t.engine in
              List.iter (fun p -> p.respond (Printf.sprintf "ok epoch %d" e)) items
            end;
            Ok ()
        | Error _ as e -> e
      in
      let events = List.concat_map (fun p -> p.events) items in
      (match apply items events with
      | Ok () -> ()
      | Error _ ->
          (* The coalesced epoch failed — some queued event no longer
             type-checks against the evolving network (e.g. a leave of
             a receiver that already left), or the solver stalled.
             Isolate the offender(s): re-apply item by item, each lone
             event or batch block as its own epoch, and report
             failures to their own submitter with the original line
             number.  Survivors still land; the daemon never dies on
             bad input. *)
          List.iter
            (fun p ->
              match apply [ p ] p.events with
              | Ok () -> ()
              | Error e ->
                  Registry.incr ~by:(List.length p.events) t.rejected;
                  p.respond
                    (Printf.sprintf "err line %d: %s" p.lineno (Solver_error.to_string e)))
            items)

(* ------------------------------------------------------------------ *)
(* Time-series sampling.                                               *)

(* One sampler tick: refresh the GC gauges, append the registry's flat
   readout to the in-memory series, and mirror the tick to the JSONL
   appender (flushed per line so a killed daemon loses at most one
   tick).  Timestamps are the monotonic clock — strictly monotone
   within a run, immune to NTP steps — exposed for tests; the serve
   loops call it on the configured cadence. *)
let sample t =
  let now = Clock.now_s () in
  t.last_sample <- now;
  let readout = Timeseries.sample t.series ~ts:now t.registry in
  match t.series_oc with
  | None -> ()
  | Some oc ->
      output_string oc (Timeseries.tick_line ~ts:now readout ^ "\n");
      Stdlib.flush oc

let maybe_sample t =
  if
    t.config.sample_interval > 0.0
    && Clock.now_s () -. t.last_sample >= t.config.sample_interval
  then sample t

let series t = t.series

let enqueue t ~lineno ~respond events =
  if t.first_arrival = None then t.first_arrival <- Some (Clock.now_ns ());
  let n = List.length events in
  Registry.incr ~by:n t.ingested;
  t.queue <- { events; lineno; respond } :: t.queue;
  t.queued_events <- t.queued_events + n;
  if t.queued_events >= t.config.max_batch then flush t

(* ------------------------------------------------------------------ *)
(* Queries.                                                            *)

let find_name lineno what names name =
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = name && !found < 0 then found := i) names;
  if !found < 0 then
    raise (Churn_parser.Parse_error (lineno, Printf.sprintf "unknown %s %S" what name));
  !found

let receiver_rows t =
  let net = Engine.network t.engine and alloc = Engine.allocation t.engine in
  Array.to_list (Network.all_receivers net)
  |> List.map (fun (r : Network.receiver_id) ->
         let spec = Network.session_spec net r.Network.session in
         Printf.sprintf "%s %s %.17g"
           t.parsed.Net_parser.session_names.(r.Network.session)
           t.parsed.Net_parser.node_names.(spec.Network.receivers.(r.Network.index))
           (Allocation.rate alloc r))

let answer t ~lineno ~respond (q : Protocol.query) =
  Registry.incr t.queries;
  match q with
  | Protocol.Epoch ->
      flush t;
      respond (Printf.sprintf "epoch %d" (Engine.epoch t.engine))
  | Protocol.Rates ->
      flush t;
      let rows = receiver_rows t in
      respond (Printf.sprintf "rates %d epoch %d" (List.length rows) (Engine.epoch t.engine));
      List.iter respond rows
  | Protocol.Rate { session; node } ->
      flush t;
      let si = find_name lineno "session" t.parsed.Net_parser.session_names session in
      let ni = find_name lineno "node" t.parsed.Net_parser.node_names node in
      let net = Engine.network t.engine in
      let spec = Network.session_spec net si in
      let index = ref (-1) in
      Array.iteri (fun k n -> if n = ni && !index < 0 then index := k) spec.Network.receivers;
      if !index < 0 then
        raise
          (Churn_parser.Parse_error
             (lineno, Printf.sprintf "session %s has no receiver on node %s" session node));
      respond
        (Printf.sprintf "rate %.17g"
           (Allocation.rate (Engine.allocation t.engine)
              { Network.session = si; Network.index = !index }))
  | Protocol.Metrics `Json -> respond ("metrics " ^ Json.to_string (snapshot t))
  | Protocol.Metrics `Prometheus ->
      let lines =
        String.split_on_char '\n' (prometheus t) |> List.filter (fun l -> l <> "")
      in
      respond (Printf.sprintf "metrics prom %d" (List.length lines));
      List.iter respond lines
  | Protocol.Stats ->
      flush t;
      let cval name = Json.Num (float_of_int (Registry.counter_value (Registry.counter t.registry name))) in
      let gval name =
        let g = Registry.gauge t.registry name in
        if Registry.gauge_is_set g then Json.Num (Registry.gauge_value g) else Json.Null
      in
      let quantiles lh =
        let h = Registry.log_histogram_stats lh in
        Json.Obj
          [
            ("count", Json.Num (float_of_int (Mmfair_stats.Log_histogram.count h)));
            ("p50", Json.Num (Registry.log_quantile lh 0.50));
            ("p90", Json.Num (Registry.log_quantile lh 0.90));
            ("p99", Json.Num (Registry.log_quantile lh 0.99));
            ("max", Json.Num (Mmfair_stats.Log_histogram.max_value h));
            ("overflow", Json.Num (float_of_int (Mmfair_stats.Log_histogram.overflow h)));
            ("underflow", Json.Num (float_of_int (Mmfair_stats.Log_histogram.underflow h)));
          ]
      in
      let gc = Gc.quick_stat () in
      respond
        ("stats "
        ^ Json.to_string
            (Json.Obj
               [
                 ("t", Json.Num (Clock.now_s ()));
                 ("epoch", Json.Num (float_of_int (Engine.epoch t.engine)));
                 ("ingested", cval "serve.events.ingested.total");
                 ("rejected", cval "serve.events.rejected.total");
                 ("epochs", cval "serve.epochs.total");
                 ("queries", cval "serve.queries.total");
                 ("connections", cval "serve.connections.total");
                 ("solve", quantiles t.solve_h);
                 ("staleness", quantiles t.staleness_h);
                 ("staleness_max", gval "serve.staleness.max.seconds");
                 ("jain", gval "fairness.jain");
                 ("pool_utilization", gval "pool.utilization");
                 ( "gc",
                   Json.Obj
                     [
                       ("minor", Json.Num (float_of_int gc.Gc.minor_collections));
                       ("major", Json.Num (float_of_int gc.Gc.major_collections));
                       ("heap_words", Json.Num (float_of_int gc.Gc.heap_words));
                     ] );
               ]))
  | Protocol.Series { name; window } ->
      let pts = Timeseries.points t.series name in
      let pts =
        match window with
        | None -> pts
        | Some w ->
            let n = List.length pts in
            if n <= w then pts else List.filteri (fun i _ -> i >= n - w) pts
      in
      respond (Printf.sprintf "series %s %d" name (List.length pts));
      List.iter
        (fun (p : Timeseries.point) ->
          respond
            (Printf.sprintf "%.9g %d %.9g %.9g %.9g %.9g" p.Timeseries.p_t p.Timeseries.p_count
               p.Timeseries.p_min p.Timeseries.p_max (Timeseries.mean p) p.Timeseries.p_last))
        pts

(* ------------------------------------------------------------------ *)
(* Per-connection line handling.                                       *)

type conn = {
  mutable lineno : int;
  mutable block : Churn_parser.batch_state;  (* open [batch ... end], if any *)
  respond : string -> unit;
}

let make_conn respond = { lineno = 0; block = None; respond }

(* Feed one raw line.  A malformed line answers [err line N: ...] and
   the loop lives on; a structural block error (nested batch, empty
   block, end-without-batch) additionally abandons any open block — a
   half-burst must never be applied. *)
let handle_line t (c : conn) raw =
  c.lineno <- c.lineno + 1;
  let lineno = c.lineno in
  let reject (l, msg) =
    Registry.incr t.rejected;
    c.respond (Printf.sprintf "err line %d: %s" l msg)
  in
  match Protocol.parse t.parsed ~lineno raw with
  | exception Churn_parser.Parse_error (l, msg) ->
      reject (l, msg);
      `Continue
  | Protocol.Quit ->
      c.respond "bye";
      `Quit
  | Protocol.Query q -> (
      match answer t ~lineno ~respond:c.respond q with
      | () -> `Continue
      | exception Churn_parser.Parse_error (l, msg) ->
          reject (l, msg);
          `Continue)
  | Protocol.Churn line -> (
      match Churn_parser.step_line c.block ~lineno line with
      | exception Churn_parser.Parse_error (l, msg) ->
          c.block <- None;
          reject (l, msg);
          `Continue
      | block, item ->
          c.block <- block;
          (match item with
          | Some (Churn_parser.Single ev) -> enqueue t ~lineno ~respond:c.respond [ ev ]
          | Some (Churn_parser.Batch evs) -> enqueue t ~lineno ~respond:c.respond evs
          | None -> ());
          `Continue)

(* End-of-stream bookkeeping: a block left open is a trace error,
   reported at its opening line (like the offline parser). *)
let finish_conn t (c : conn) =
  match Churn_parser.close_batch c.block with
  | () -> ()
  | exception Churn_parser.Parse_error (l, msg) ->
      c.block <- None;
      Registry.incr t.rejected;
      c.respond (Printf.sprintf "err line %d: %s" l msg)

(* ------------------------------------------------------------------ *)
(* Transports.                                                         *)

exception Write_timeout

(* Full write, EINTR-safe.  On a non-blocking fd a full send buffer
   surfaces as EAGAIN/EWOULDBLOCK; we then wait for writability via
   select — bounded by [timeout] seconds for the whole write when
   given, raising [Write_timeout] on expiry so one client that stopped
   reading costs its own connection, never the daemon.
   EPIPE/ECONNRESET raise to the caller, which drops the connection
   (SIGPIPE itself is ignored while serving). *)
let write_all ?timeout fd s =
  let deadline = Option.map (fun d -> Clock.now_s () +. d) timeout in
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go pos =
    if pos < n then
      match Unix.write fd b pos (n - pos) with
      | written -> go (pos + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          let wait =
            match deadline with
            | None -> -1.0 (* unbounded: block until writable *)
            | Some d ->
                let left = d -. Clock.now_s () in
                if left <= 0.0 then raise Write_timeout;
                left
          in
          (match Unix.select [] [ fd ] [] wait with
          | _, [], _ -> if deadline <> None then raise Write_timeout
          | _, _ :: _, _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go pos
  in
  go 0

let respond_fd fd line = write_all fd (line ^ "\n")

(* Serve with SIGINT/SIGTERM flipping the stop flag (the select loop
   polls it) and SIGPIPE ignored (a dead client must surface as EPIPE
   on its own write, not kill the process).  Previous dispositions are
   restored on the way out, whatever the loop did. *)
let with_signals t f =
  let install signal behavior =
    match Sys.signal signal behavior with
    | prev -> Some prev
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let stop_on _ = stop t in
  let saved =
    [
      (Sys.sigint, install Sys.sigint (Sys.Signal_handle stop_on));
      (Sys.sigterm, install Sys.sigterm (Sys.Signal_handle stop_on));
      (Sys.sigpipe, install Sys.sigpipe Sys.Signal_ignore);
    ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (function s, Some prev -> (try Sys.set_signal s prev with _ -> ()) | _, None -> ())
        saved)
    f

(* The registry observes the engine's own probe stream (epoch and batch
   events feed the dynamic.* instruments) tee'd onto whatever sink the
   caller already installed. *)
let with_probe t f =
  Probe.with_sink (Sink.tee (Probe.get ()) (Registry.sink ~clock:Clock.now_s t.registry)) f

let select_read fds timeout =
  match Unix.select fds [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let serve_fd t ~input ~output =
  with_signals t @@ fun () ->
  with_probe t @@ fun () ->
  Registry.incr t.connections;
  let reader = Line_reader.of_fd input in
  let c = make_conn (respond_fd output) in
  let quit = ref false in
  (* One wakeup = at most one read() plus every line it completed;
     the queue coalesces into a single epoch per wakeup. *)
  let drain_lines () =
    let rec go () =
      match Line_reader.pending_line reader with
      | None -> ()
      | Some raw -> ( match handle_line t c raw with `Quit -> quit := true | `Continue -> go ())
    in
    go ()
  in
  while (not (stopped t)) && (not !quit) && not (Line_reader.at_eof reader) do
    (match select_read [ input ] t.config.poll_interval with
    | [] -> ()
    | _ :: _ ->
        ignore (Line_reader.refill reader);
        drain_lines ());
    flush t;
    maybe_sample t
  done;
  (* EOF may leave a terminator-less trailing line buffered; after a
     [quit], though, anything still buffered (commands sent past quit
     in the same chunk) is dead input and must not be answered. *)
  if not !quit then begin
    drain_lines ();
    if not !quit then finish_conn t c
  end;
  flush t

let serve_socket t ~path =
  with_signals t @@ fun () ->
  with_probe t @@ fun () ->
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 16;
  (* Non-blocking, so a connection aborted between select and accept
     surfaces as EAGAIN below instead of blocking the whole loop. *)
  Unix.set_nonblock listener;
  (* fd -> live connection.  The [bool ref] is a liveness guard:
     respond closures outlive the socket (queued acks, lines still
     draining after a drop), and a raw fd number freed by close can be
     reused at once by a concurrent connect/accept — so every respond
     checks the guard first and a stale one becomes a no-op instead of
     a write into somebody else's socket. *)
  let conns : (Unix.file_descr, Line_reader.t * conn * bool ref) Hashtbl.t = Hashtbl.create 8 in
  let close_conn fd =
    match Hashtbl.find_opt conns fd with
    | None -> ()
    | Some (_, c, alive) ->
        Hashtbl.remove conns fd;
        finish_conn t c;
        alive := false;
        (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let respond_conn fd alive line =
    if !alive then
      try write_all ~timeout:t.config.write_timeout fd (line ^ "\n") with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
          (* The client went away mid-answer; drop it, keep serving. *)
          close_conn fd
      | Write_timeout ->
          (* The client stopped reading and its buffer stayed full for
             write_timeout seconds; drop it rather than wedge every
             other connection behind one stalled fd. *)
          close_conn fd
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_conn (Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []);
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      flush t)
    (fun () ->
      while not (stopped t) do
        let fds = listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
        let ready = select_read fds t.config.poll_interval in
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | client, _ ->
                  Unix.set_nonblock client;
                  Registry.incr t.connections;
                  let alive = ref true in
                  Hashtbl.replace conns client
                    (Line_reader.of_fd client, make_conn (respond_conn client alive), alive)
              | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some (reader, c, alive) -> (
                  match Line_reader.refill reader with
                  | status -> (
                      (* A respond mid-loop may drop the connection
                         (slow or dead client); its remaining lines are
                         then dead input, not commands. *)
                      let rec go () =
                        if not !alive then `Continue
                        else
                          match Line_reader.pending_line reader with
                          | None -> `Continue
                          | Some raw -> (
                              match handle_line t c raw with
                              | `Quit -> `Quit
                              | `Continue -> go ())
                      in
                      match (go (), status) with
                      | `Quit, _ | _, `Eof -> close_conn fd
                      | `Continue, `Data -> ())
                  | exception
                      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                      ()
                  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn fd))
          ready;
        (* One coalesced epoch per wakeup, across every connection. *)
        flush t;
        maybe_sample t
      done)
