module Churn_parser = Mmfair_workload.Churn_parser

type query =
  | Rate of { session : string; node : string }
  | Rates
  | Epoch
  | Metrics of [ `Json | `Prometheus ]
  | Stats
  | Series of { name : string; window : int option }

type command = Churn of Churn_parser.line | Query of query | Quit

let fail lineno msg = raise (Churn_parser.Parse_error (lineno, msg))

let strip_comment s =
  match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let parse p ~lineno raw =
  match split_ws (String.trim (strip_comment raw)) with
  | [] -> Churn Churn_parser.Blank
  | [ "rate"; session; node ] -> Query (Rate { session; node })
  | "rate" :: _ -> fail lineno "rate wants: rate SESSION NODE"
  | [ "rates" ] -> Query Rates
  | "rates" :: _ -> fail lineno "rates takes no arguments"
  | [ "epoch" ] -> Query Epoch
  | "epoch" :: _ -> fail lineno "epoch takes no arguments"
  | [ "metrics" ] | [ "metrics"; "json" ] -> Query (Metrics `Json)
  | [ "metrics"; "prom" ] | [ "metrics"; "prometheus" ] -> Query (Metrics `Prometheus)
  | "metrics" :: _ -> fail lineno "metrics wants: metrics [json|prom]"
  | [ "stats" ] -> Query Stats
  | "stats" :: _ -> fail lineno "stats takes no arguments"
  | [ "series"; name ] -> Query (Series { name; window = None })
  | [ "series"; name; window ] -> (
      match int_of_string_opt window with
      | Some w when w > 0 -> Query (Series { name; window = Some w })
      | _ -> fail lineno "series wants: series METRIC [WINDOW>0]")
  | "series" :: _ -> fail lineno "series wants: series METRIC [WINDOW]"
  | [ "quit" ] -> Quit
  | "quit" :: _ -> fail lineno "quit takes no arguments"
  | _ -> Churn (Churn_parser.parse_line p ~lineno raw)
