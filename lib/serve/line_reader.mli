(** Incremental line assembly over raw [read()] chunks.

    A churnd connection delivers bytes, not lines: one [read] may carry
    half a line, three lines, or a line whose terminator only arrives in
    the next chunk.  [Line_reader] buffers the partial tail across
    arbitrary read boundaries and surfaces complete lines one at a time.
    Terminators are ['\n']; a preceding ['\r'] is stripped (CRLF input);
    a non-terminated trailing line is surfaced once after EOF, matching
    how a text editor would read the file. *)

type t

val create : ?buf_size:int -> (bytes -> int -> int -> int) -> t
(** [create read] over a [read buf pos len] function returning the
    byte count ([0] = EOF).  [buf_size] (default 4096) is the chunk
    size per {!refill}.  Raises [Invalid_argument] when
    [buf_size < 1]. *)

val of_fd : ?buf_size:int -> Unix.file_descr -> t
(** A reader over [Unix.read], retrying [EINTR] (signals must wake the
    serve loop, not kill a read). *)

val refill : t -> [ `Data | `Eof ]
(** Issue exactly one [read] and absorb its bytes; [`Eof] when the
    source is exhausted (then and on every later call).  The daemon
    calls this once per readiness wakeup, then drains
    {!pending_line} — so one wakeup never blocks on a second read. *)

val pending_line : t -> string option
(** The next already-complete line, if any, terminator stripped —
    never reads.  After EOF, a non-terminated trailing partial is
    returned (once). *)

val at_eof : t -> bool
(** EOF reached and every line (including the trailing partial) has
    been consumed. *)

val next_line : t -> string option
(** Blocking convenience for tests and offline replay: {!refill} until
    a line completes; [None] at exhaustion. *)
