type t = {
  r : int;
  c : int;
  row_ptr : int array; (* length r+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

type builder = {
  b_rows : int;
  b_cols : int;
  (* Per-row association from column to accumulated value. *)
  row_entries : (int, float) Hashtbl.t array;
}

let builder ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.builder: negative dimension";
  { b_rows = rows; b_cols = cols; row_entries = Array.init rows (fun _ -> Hashtbl.create 4) }

let add b i j x =
  if i < 0 || i >= b.b_rows || j < 0 || j >= b.b_cols then invalid_arg "Sparse.add: out of range";
  let tbl = b.row_entries.(i) in
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl j) in
  Hashtbl.replace tbl j (prev +. x)

let finalize b =
  let counts =
    Array.map (fun tbl -> Hashtbl.fold (fun _ v acc -> if v <> 0.0 then acc + 1 else acc) tbl 0) b.row_entries
  in
  let nnz = Array.fold_left ( + ) 0 counts in
  let row_ptr = Array.make (b.b_rows + 1) 0 in
  for i = 0 to b.b_rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + counts.(i)
  done;
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  Array.iteri
    (fun i tbl ->
      let entries =
        Hashtbl.fold (fun j v acc -> if v <> 0.0 then (j, v) :: acc else acc) tbl []
      in
      let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
      List.iteri
        (fun k (j, v) ->
          col_idx.(row_ptr.(i) + k) <- j;
          values.(row_ptr.(i) + k) <- v)
        entries)
    b.row_entries;
  { r = b.b_rows; c = b.b_cols; row_ptr; col_idx; values }

let rows m = m.r
let cols m = m.c
let nnz m = Array.length m.values

let get m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then invalid_arg "Sparse.get: out of range";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let cj = m.col_idx.(mid) in
    if cj = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if cj < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Sparse.mul_vec: shape mismatch";
  Array.init m.r (fun i ->
      let s = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        s := !s +. (m.values.(k) *. v.(m.col_idx.(k)))
      done;
      !s)

let vec_mul v m =
  if m.r <> Array.length v then invalid_arg "Sparse.vec_mul: shape mismatch";
  let out = Array.make m.c 0.0 in
  for i = 0 to m.r - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        out.(m.col_idx.(k)) <- out.(m.col_idx.(k)) +. (vi *. m.values.(k))
      done
  done;
  out

let row_sums m =
  Array.init m.r (fun i ->
      let s = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        s := !s +. m.values.(k)
      done;
      !s)

let iter_row m i f =
  if i < 0 || i >= m.r then invalid_arg "Sparse.iter_row: out of range";
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done
