(** Sparse matrices in compressed-sparse-row form.

    The exact Markov chains for the Deterministic protocol have state
    spaces in the thousands with only a handful of successors per
    state; CSR keeps the stationary-distribution power iteration linear
    in the number of transitions. *)

type t
(** An immutable [rows × cols] sparse matrix. *)

type builder
(** Mutable triplet accumulator used to assemble a matrix. *)

val builder : rows:int -> cols:int -> builder
(** A fresh builder for a [rows × cols] matrix. *)

val add : builder -> int -> int -> float -> unit
(** [add b i j x] accumulates [x] into entry [(i, j)].  Repeated adds
    to the same entry sum.  Raises [Invalid_argument] out of range. *)

val finalize : builder -> t
(** Freeze the builder into CSR form.  Zero entries are dropped. *)

val rows : t -> int
val cols : t -> int

val nnz : t -> int
(** Number of stored (structurally non-zero) entries. *)

val get : t -> int -> int -> float
(** [get m i j] is entry [(i, j)] ([0.] if not stored).  Logarithmic in
    the row's entry count. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is [m·v]. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul v m] is [vᵀ·m] — one Markov step for a CSR transition
    matrix. *)

val row_sums : t -> Vec.t
(** Per-row entry sums — each should be 1 for a stochastic matrix. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row m i f] applies [f j x] to each stored entry of row [i]. *)
