(** Scalar root- and threshold-finding by bisection.

    The generalized max-min allocator raises the common rate of a set
    of receivers until the first link saturates; with arbitrary
    monotone session-link-rate functions that saturation point has no
    closed form and is located here. *)

val root : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [root f lo hi] finds [x] in [[lo, hi]] with [f x ≈ 0], assuming
    [f lo] and [f hi] have opposite signs (or one of them is zero).
    [tol] (default [1e-12]) bounds the final interval width relative to
    the magnitude of the bracket.  Raises [Invalid_argument] when the
    bracket does not straddle a sign change. *)

val sup_satisfying : ?tol:float -> ?max_iter:int -> (float -> bool) -> float -> float -> float
(** [sup_satisfying ok lo hi] is the supremum of [{x ∈ [lo, hi] :
    ok x}] for a downward-closed predicate ([ok] true on an initial
    segment).  Requires [ok lo]; returns [hi] when [ok hi].  The
    result [x*] satisfies [ok x*] (the returned point is always
    feasible, erring low by at most [tol·max(1,|hi|)]). *)
