(** Dense row-major float matrices and a direct linear solver.

    Small systems only: the Markov module's exact 2-receiver chains are
    solved either directly (dense, for small state spaces) or by sparse
    power iteration ({!Sparse}).  Partial pivoting keeps the direct
    solver stable on the mildly ill-conditioned [(P^T − I)] systems
    that stationary-distribution computations produce. *)

type t
(** A dense [rows × cols] matrix. *)

val make : int -> int -> float -> t
(** [make r c x] is an [r × c] matrix filled with [x]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has entry [f i j] at row [i], column [j]. *)

val identity : int -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

val mul : t -> t -> t
(** Matrix product; raises [Invalid_argument] on shape mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a v] is [a·v]. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul v a] is the row-vector product [vᵀ·a] — one step of a
    discrete-time Markov chain when [a] is a transition matrix. *)

val solve : t -> Vec.t -> Vec.t
(** [solve a b] solves [a·x = b] by Gaussian elimination with partial
    pivoting.  Raises [Invalid_argument] on a non-square [a] or shape
    mismatch, and [Failure] on a (numerically) singular system. *)

val pp : Format.formatter -> t -> unit
