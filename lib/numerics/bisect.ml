let root ?(tol = 1e-12) ?(max_iter = 200) f lo hi =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then invalid_arg "Bisect.root: no sign change in bracket"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    let scale = Stdlib.max 1.0 (Stdlib.max (Float.abs !lo) (Float.abs !hi)) in
    while !hi -. !lo > tol *. scale && !iter < max_iter do
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end;
      incr iter
    done;
    0.5 *. (!lo +. !hi)
  end

let sup_satisfying ?(tol = 1e-12) ?(max_iter = 200) ok lo hi =
  if not (ok lo) then invalid_arg "Bisect.sup_satisfying: predicate false at lo";
  if ok hi then hi
  else begin
    let lo = ref lo and hi = ref hi in
    let iter = ref 0 in
    (* Same relative-tolerance scale as [root]: a large-magnitude [lo]
       must widen the stopping window too, or brackets like
       [-1e9, 0] spin until [max_iter]. *)
    let scale = Stdlib.max 1.0 (Stdlib.max (Float.abs !lo) (Float.abs !hi)) in
    while !hi -. !lo > tol *. scale && !iter < max_iter do
      let mid = 0.5 *. (!lo +. !hi) in
      if ok mid then lo := mid else hi := mid;
      incr iter
    done;
    !lo
  end
