(** Stationary distributions of finite discrete-time Markov chains.

    Given a row-stochastic transition matrix [P], computes the
    stationary law [π] with [π·P = π], [π ≥ 0], [Σπ = 1].  Two engines:

    - {!stationary_power}: damped power iteration on the sparse matrix;
      robust on large chains and on periodic chains (the damping mixes
      in a uniform restart, like PageRank with a vanishing restart as
      convergence is approached — here we simply average successive
      iterates, which converges for any aperiodic unichain and for
      period-2 chains that protocol counters occasionally produce).
    - {!stationary_direct}: dense solve of [(Pᵀ − I)π = 0] with the
      normalization row; exact for small chains, used to cross-check
      the iterative engine in tests. *)

val stationary_power :
  ?tol:float -> ?max_iter:int -> Sparse.t -> Vec.t
(** [stationary_power p] iterates [π ← ½(π + π·P)] from the uniform
    distribution until the L∞ change drops below [tol] (default
    [1e-12]) or [max_iter] (default [200_000]) steps elapse.  Raises
    [Invalid_argument] if [p] is not square, and [Failure] if the
    iteration fails to converge. *)

val stationary_direct : Mat.t -> Vec.t
(** [stationary_direct p] solves the linear system directly.  Raises
    [Invalid_argument] if [p] is not square and [Failure] when the
    chain's stationary law is not unique (singular system). *)

val is_stochastic : ?tol:float -> Sparse.t -> bool
(** Checks every row sums to 1 within [tol] (default [1e-9]) and all
    entries are non-negative. *)

val expectation : Vec.t -> (int -> float) -> float
(** [expectation pi f] is [Σ_s pi(s)·f(s)]. *)
