(** Dense float vectors.

    Thin, allocation-explicit helpers over [float array], shared by the
    Markov solver and the min-unfavorability ordering code.  Functions
    that combine two vectors raise [Invalid_argument] on length
    mismatch. *)

type t = float array

val make : int -> float -> t
(** [make n x] is a length-[n] vector of [x]s. *)

val init : int -> (int -> float) -> t
(** [init n f] is [[| f 0; …; f (n−1) |]]. *)

val copy : t -> t

val dim : t -> int

val add : t -> t -> t
(** Elementwise sum. *)

val sub : t -> t -> t
(** Elementwise difference. *)

val scale : float -> t -> t
(** [scale k v] multiplies every component by [k]. *)

val dot : t -> t -> float
(** Inner product with Kahan compensation. *)

val norm1 : t -> float
(** Sum of absolute values. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Largest absolute component (0 for the empty vector). *)

val sum : t -> float
(** Compensated component sum. *)

val normalize1 : t -> t
(** [normalize1 v] scales [v] so its components sum to 1.  Raises
    [Invalid_argument] when the sum is zero or not finite. *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff a b = norm_inf (sub a b)] without the intermediate. *)

val pp : Format.formatter -> t -> unit
(** Renders as [[v0; v1; …]] with 6 significant digits. *)
