let stationary_power ?(tol = 1e-12) ?(max_iter = 200_000) p =
  if Sparse.rows p <> Sparse.cols p then invalid_arg "Markov_solve.stationary_power: not square";
  let n = Sparse.rows p in
  if n = 0 then invalid_arg "Markov_solve.stationary_power: empty chain";
  let pi = ref (Vec.make n (1.0 /. float_of_int n)) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    let stepped = Sparse.vec_mul !pi p in
    (* Averaging with the previous iterate damps period-2 oscillation. *)
    let next = Vec.scale 0.5 (Vec.add !pi stepped) in
    let next = Vec.normalize1 next in
    if Vec.max_abs_diff next !pi < tol then converged := true;
    pi := next;
    incr iter
  done;
  if not !converged then failwith "Markov_solve.stationary_power: no convergence";
  !pi

let stationary_direct p =
  if Mat.rows p <> Mat.cols p then invalid_arg "Markov_solve.stationary_direct: not square";
  let n = Mat.rows p in
  (* Build (Pᵀ − I) with the last equation replaced by Σπ = 1. *)
  let a =
    Mat.init n n (fun i j ->
        if i = n - 1 then 1.0
        else begin
          let v = Mat.get p j i in
          if i = j then v -. 1.0 else v
        end)
  in
  let b = Array.init n (fun i -> if i = n - 1 then 1.0 else 0.0) in
  Mat.solve a b

let is_stochastic ?(tol = 1e-9) p =
  let ok = ref true in
  let sums = Sparse.row_sums p in
  Array.iter (fun s -> if Float.abs (s -. 1.0) > tol then ok := false) sums;
  for i = 0 to Sparse.rows p - 1 do
    Sparse.iter_row p i (fun _ v -> if v < -.tol then ok := false)
  done;
  !ok

let expectation pi f =
  let s = ref 0.0 in
  Array.iteri (fun i p -> s := !s +. (p *. f i)) pi;
  !s
