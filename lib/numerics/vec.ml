type t = float array

let make = Array.make
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale k v = Array.map (fun x -> k *. x) v

let kahan_fold f a =
  let s = ref 0.0 and c = ref 0.0 in
  Array.iteri
    (fun i x ->
      let y = f i x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    a;
  !s

let dot a b =
  check_dims "dot" a b;
  kahan_fold (fun i x -> x *. b.(i)) a

let sum v = kahan_fold (fun _ x -> x) v
let norm1 v = kahan_fold (fun _ x -> Float.abs x) v
let norm2 v = sqrt (dot v v)
let norm_inf v = Array.fold_left (fun acc x -> Stdlib.max acc (Float.abs x)) 0.0 v

let normalize1 v =
  let s = sum v in
  if s = 0.0 || not (Float.is_finite s) then invalid_arg "Vec.normalize1: zero or non-finite sum";
  scale (1.0 /. s) v

let max_abs_diff a b =
  check_dims "max_abs_diff" a b;
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Stdlib.max !m (Float.abs (x -. b.(i)))) a;
  !m

let pp fmt v =
  Format.fprintf fmt "[";
  Array.iteri (fun i x -> if i > 0 then Format.fprintf fmt "; %.6g" x else Format.fprintf fmt "%.6g" x) v;
  Format.fprintf fmt "]"
