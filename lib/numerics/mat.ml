type t = { r : int; c : int; data : float array }

let make r c x =
  if r < 0 || c < 0 then invalid_arg "Mat.make: negative dimension";
  { r; c; data = Array.make (r * c) x }

let init r c f =
  let m = make r c 0.0 in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.data.((i * c) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)
let rows m = m.r
let cols m = m.c

let get m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then invalid_arg "Mat.get: out of range";
  m.data.((i * m.c) + j)

let set m i j x =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then invalid_arg "Mat.set: out of range";
  m.data.((i * m.c) + j) <- x

let copy m = { m with data = Array.copy m.data }
let transpose m = init m.c m.r (fun i j -> get m j i)

let mul a b =
  if a.c <> b.r then invalid_arg "Mat.mul: shape mismatch";
  init a.r b.c (fun i j ->
      let s = ref 0.0 in
      for k = 0 to a.c - 1 do
        s := !s +. (a.data.((i * a.c) + k) *. b.data.((k * b.c) + j))
      done;
      !s)

let mul_vec a v =
  if a.c <> Array.length v then invalid_arg "Mat.mul_vec: shape mismatch";
  Array.init a.r (fun i ->
      let s = ref 0.0 in
      for k = 0 to a.c - 1 do
        s := !s +. (a.data.((i * a.c) + k) *. v.(k))
      done;
      !s)

let vec_mul v a =
  if a.r <> Array.length v then invalid_arg "Mat.vec_mul: shape mismatch";
  Array.init a.c (fun j ->
      let s = ref 0.0 in
      for k = 0 to a.r - 1 do
        s := !s +. (v.(k) *. a.data.((k * a.c) + j))
      done;
      !s)

let solve a b =
  if a.r <> a.c then invalid_arg "Mat.solve: matrix must be square";
  if a.r <> Array.length b then invalid_arg "Mat.solve: shape mismatch";
  let n = a.r in
  let m = copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry to the diagonal. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs (get m row col) > Float.abs (get m !pivot col) then pivot := row
    done;
    if Float.abs (get m !pivot col) < 1e-12 then failwith "Mat.solve: singular matrix";
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    let d = get m col col in
    for row = col + 1 to n - 1 do
      let factor = get m row col /. d in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          set m row j (get m row j -. (factor *. get m col j))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let s = ref x.(row) in
    for j = row + 1 to n - 1 do
      s := !s -. (get m row j *. x.(j))
    done;
    x.(row) <- !s /. get m row row
  done;
  x

let pp fmt m =
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "|";
    for j = 0 to m.c - 1 do
      Format.fprintf fmt " %10.6g" (get m i j)
    done;
    Format.fprintf fmt " |@."
  done
