module Network = Mmfair_core.Network
module Allocation = Mmfair_core.Allocation

type entry = {
  epoch : int;
  events : Event.t list;
  network : Network.t;
  allocation : Allocation.t;
}

type t = {
  retain : int;
  mutable entries : entry list; (* newest first, length <= retain *)
  mutable epoch : int;
}

let create ?(retain = 8) network allocation =
  if retain < 1 then invalid_arg "Store.create: retain must be >= 1";
  { retain; entries = [ { epoch = 0; events = []; network; allocation } ]; epoch = 0 }

let retain t = t.retain
let epoch t = t.epoch

let current t =
  match t.entries with
  | e :: _ -> e
  | [] -> assert false (* create seeds one entry; push never empties *)

let truncate n l = List.filteri (fun i _ -> i < n) l

let push t ~events ~network ~allocation =
  t.epoch <- t.epoch + 1;
  let e = { epoch = t.epoch; events; network; allocation } in
  t.entries <- e :: truncate (t.retain - 1) t.entries;
  e

let find t epoch = List.find_opt (fun (e : entry) -> e.epoch = epoch) t.entries
let retained_epochs t = List.map (fun (e : entry) -> e.epoch) t.entries

let fold_epochs ?lo ?hi t ~init ~f =
  (* entries are newest first; a right fold visits them oldest first. *)
  let hi = match hi with Some h -> h | None -> t.epoch in
  let in_range (e : entry) =
    e.epoch <= hi && match lo with Some l -> e.epoch >= l | None -> true
  in
  List.fold_right (fun e acc -> if in_range e then f acc e else acc) t.entries init
