(** Churn events: the four ways a running network changes.

    These are the dynamics the paper studies — receiver removal
    (Figure 3), random joins (Figure 5) — plus the two knobs operators
    turn between the paper's static snapshots: a session's maximum
    desired rate [ρ_i] and a link's capacity [c_j].  Receivers are
    identified by their {e node} rather than their in-session index:
    indices shift when an earlier receiver leaves, node placements
    don't (the paper's τ maps members to distinct nodes within a
    session, so a node names at most one receiver per session). *)

type t =
  | Join of { session : int; node : Mmfair_topology.Graph.node; weight : float option }
      (** Add a receiver on [node] to [session]; [weight] defaults to
          the session's existing weight (see
          {!Mmfair_core.Network.with_receiver}). *)
  | Leave of { session : int; node : Mmfair_topology.Graph.node }
      (** Remove the receiver of [session] placed on [node]. *)
  | Rho_change of { session : int; rho : float }
      (** Replace [ρ_i]; [infinity] lifts the bound. *)
  | Capacity_change of { link : Mmfair_topology.Graph.link_id; cap : float }
      (** Replace [c_j]. *)

val kind : t -> string
(** Event class for telemetry and bench bucketing: ["join"], ["leave"],
    ["rho"], or ["cap"] — matches the [.churn] trace keywords. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, [.churn]-style but with 1-based session labels. *)
