(** Coalesced churn: one re-solve for a burst of events.

    A flash crowd delivers joins, leaves and operator knob-turns
    faster than per-event re-solving can keep up.  [Batch] applies a
    whole burst as {e one} epoch: the events' surgeries are applied in
    order to produce the final network, the burst is netted out
    against the starting state (a join/leave pair on one node cancels;
    repeated [ρ]/capacity writes keep the last value — the max-min
    allocation depends only on the final network, not the event path),
    and the fairness closure of all surviving changes is partitioned
    into {e disjoint} components ({!Mmfair_core.Component.groups}) —
    each re-solved as its own restricted problem through the
    {!Mmfair_core.Solve_engine} seam with everything outside it frozen
    at the carried-over rates, one {!scheduler} task per component (a
    domain {!pool} runs them in parallel), the per-component solves
    stitched into one candidate and boundary-expanded — merging
    components that turn out to lean on a shared saturated link — to
    the same sound fixed point as the per-event engine (DESIGN.md
    §11–13).

    {!Engine.apply} is the singleton case of {!apply}: both paths are
    one implementation, so the per-event differential gate covers the
    batch machinery too; a dedicated gate replays random traces at
    batch sizes 1/4/16 and requires identical final rates. *)

type stats = {
  events : int;  (** Raw events submitted. *)
  net_events : int;  (** Changes surviving the netting-out. *)
  cancelled : int;  (** [events - net_events]. *)
  components : int;
      (** Disjoint fairness components in the final partition — the
          unit of independence (small ones share a scheduler task, see
          {!scheduler}); [1] on a full solve, [0] when nothing could
          move. *)
  component_sessions : int;  (** Sessions inside the union component. *)
  component_receivers : int;  (** Receivers inside the union component. *)
  total_receivers : int;  (** Receivers in the post-batch network. *)
  reuse_fraction : float;  (** Receivers carried over frozen / total; 0 on a full solve. *)
  full_solve : bool;  (** Whether the engine fell back to from-scratch. *)
  solves : int;
      (** Restricted water-filling passes actually run (one per solve
          task, summed over boundary-expansion rounds); [1] on a full
          solve, [0] when nothing could move. *)
}
(** What one {!apply} did — also emitted as paired [epoch] and [batch]
    probe events ({!Mmfair_obs.Events.epoch}, {!Mmfair_obs.Events.batch})
    for the telemetry sinks. *)

type scheduler = { run : (unit -> unit) list -> unit }
(** How the batch's water-filling passes execute.  [run] receives one
    task per {e pack} of disjoint fairness components — a restricted
    solve pays O(network) setup however small the component, so
    components are coalesced (in deterministic root order) into tasks
    of at least a few sessions each; a component above that floor is
    its own task.  Tasks must all complete before [run] returns; they
    write to disjoint slots, so any execution order (or true
    parallelism) yields the same result.  A task the scheduler drops
    surfaces as {!Mmfair_core.Solver_error.Scheduler_failure}. *)

val sequential : scheduler
(** Runs each task in order on the calling thread. *)

val pool : domains:int -> scheduler
(** Tasks run on the process-wide domain pool of that size
    ({!Mmfair_core.Domain_pool.shared}) — the submitting domain plus
    [domains - 1] persistent workers.  [pool ~domains:1] behaves
    exactly like {!sequential}.  Allocations are bitwise identical at
    every pool size: tasks are deterministic and share nothing, and
    their probe events are buffered per task and replayed in task
    order on the caller's sink. *)

type t

val create :
  ?solver:Mmfair_core.Solve_engine.t ->
  ?scheduler:scheduler ->
  ?domains:int ->
  ?retain:int ->
  ?allocation:Mmfair_core.Allocation.t ->
  Mmfair_core.Network.t ->
  t
(** [create net] solves epoch 0 through [solver]
    ({!Mmfair_core.Solve_engine.default} unless given) and seeds the
    store.  Engines whose {!Mmfair_core.Solve_engine.capabilities}
    lack [partial] still work: every non-empty component falls back to
    a full solve.  [domains] (default [1]) picks {!pool} over that
    many domains as the scheduler; an explicit [scheduler] wins over
    [domains].  [retain] bounds the store window ({!Store.create}).
    [allocation] is a {e trusted} warm restore: the caller asserts it
    is the max-min fair allocation of [net] (benchmarks use it to
    reset an engine between repetitions without paying the initial
    solve) — passing anything else silently corrupts every later
    epoch. *)

val create_result :
  ?solver:Mmfair_core.Solve_engine.t ->
  ?scheduler:scheduler ->
  ?domains:int ->
  ?retain:int ->
  ?allocation:Mmfair_core.Allocation.t ->
  Mmfair_core.Network.t ->
  (t, Mmfair_core.Solver_error.t) result
(** Typed-error variant of {!create}. *)

val network : t -> Mmfair_core.Network.t
(** The current (post-last-batch) network. *)

val allocation : t -> Mmfair_core.Allocation.t
(** The current epoch's max-min fair allocation. *)

val epoch : t -> int
val store : t -> Store.t
val solver : t -> Mmfair_core.Solve_engine.t

val apply : t -> Event.t list -> stats
(** Apply one batch of churn events as a single epoch: sequential
    surgeries, state diff, union component, restricted solve(s), store
    push, [epoch] + [batch] probe emission.  Events validate against
    the {e evolving} network in list order, with the same
    [Invalid_argument] conditions as {!Engine.apply} (so a join
    followed by a leave of the same node is legal in one batch, and a
    leave of a receiver that never existed is not); the empty batch is
    rejected.  On a raise the engine state is unchanged — surgeries
    and solves happen before any mutation. *)

val apply_result : t -> Event.t list -> (stats, Mmfair_core.Solver_error.t) result
(** Typed-error variant of {!apply}. *)
