module Solve_engine = Mmfair_core.Solve_engine
module Solver_error = Mmfair_core.Solver_error

(* The per-event engine is the singleton case of Batch.apply: one
   implementation carries both paths, so the per-event differential
   gate exercises the batch machinery on every event.  This module
   only adapts the interface (an Allocator.engine choice instead of a
   Solve_engine.t, per-event stats with the event's kind). *)

type stats = {
  kind : string;
  component_sessions : int;
  component_receivers : int;
  total_receivers : int;
  reuse_fraction : float;
  full_solve : bool;
  solves : int;
}

type t = Batch.t

let solver_name = "Dynamic"

let create ?(engine = `Auto) ?domains ?retain ?allocation net =
  Batch.create ~solver:(Solve_engine.allocator ~engine ()) ?domains ?retain ?allocation net

let create_result ?engine ?domains ?retain ?allocation net =
  Solver_error.protect ~solver:solver_name (fun () ->
      create ?engine ?domains ?retain ?allocation net)

let network = Batch.network
let allocation = Batch.allocation
let epoch = Batch.epoch
let store = Batch.store

let apply t event =
  let s = Batch.apply t [ event ] in
  {
    kind = Event.kind event;
    component_sessions = s.Batch.component_sessions;
    component_receivers = s.Batch.component_receivers;
    total_receivers = s.Batch.total_receivers;
    reuse_fraction = s.Batch.reuse_fraction;
    full_solve = s.Batch.full_solve;
    solves = s.Batch.solves;
  }

let apply_result t event = Solver_error.protect ~solver:solver_name (fun () -> apply t event)
