module Graph = Mmfair_topology.Graph
module Network = Mmfair_core.Network
module Allocation = Mmfair_core.Allocation
module Allocator = Mmfair_core.Allocator
module Solver_error = Mmfair_core.Solver_error
module Obs = Mmfair_obs

(* Links whose slack could flip a freeze decision are treated as
   binding.  Wider than the solvers' 1e-9 working tolerance on
   purpose: a link within 1e-7 (relative) of saturation joins the
   coupling graph, so float drift between an incremental and a
   from-scratch solve stays well inside the differential gate. *)
let eps_bind = 1e-7

type stats = {
  kind : string;
  component_sessions : int;
  component_receivers : int;
  total_receivers : int;
  reuse_fraction : float;
  full_solve : bool;
  solves : int;
}

type t = {
  engine : Allocator.engine;
  store : Store.t;
  mutable network : Network.t;
  mutable allocation : Allocation.t;
}

let solver_name = "Dynamic"

let create ?(engine = `Auto) ?retain ?allocation net =
  let allocation =
    match allocation with Some a -> a | None -> Allocator.max_min ~engine net
  in
  { engine; store = Store.create ?retain net allocation; network = net; allocation }

let create_result ?engine ?retain ?allocation net =
  Solver_error.protect ~solver:solver_name (fun () -> create ?engine ?retain ?allocation net)

let network t = t.network
let allocation t = t.allocation
let epoch t = Store.epoch t.store
let store t = t.store

(* --- fairness component ---------------------------------------------- *)

(* The component is session-granular: single-rate coupling and the
   max-shape of the Efficient/Scaled link-rate functions tie a
   session's receivers together, so sessions join or stay out whole.
   Two sessions are coupled when they share a binding link; the
   component is the transitive closure of the touched sessions over
   that relation (DESIGN.md §11). *)
type component = {
  in_comp : bool array; (* per session *)
  mutable n_sessions : int;
}

let receiver_count_of net i = Array.length (Network.session_spec net i).Network.receivers

let component_receivers net comp =
  let n = ref 0 in
  Array.iteri (fun i inside -> if inside then n := !n + receiver_count_of net i) comp.in_comp;
  !n

(* Grow [comp] by session [i] and everything reachable from it over
   binding links.  [binding l] answers for the coupling allocation
   (the previous epoch's, or the freshly solved one during
   expansion); session membership on links is read from [net] (the
   post-event network). *)
let absorb net binding comp i =
  let stack = ref [ i ] in
  if not comp.in_comp.(i) then begin
    comp.in_comp.(i) <- true;
    comp.n_sessions <- comp.n_sessions + 1
  end;
  while
    match !stack with
    | [] -> false
    | s :: rest ->
        stack := rest;
        List.iter
          (fun l ->
            if binding l then
              List.iter
                (fun (r : Network.receiver_id) ->
                  let j = r.Network.session in
                  if not comp.in_comp.(j) then begin
                    comp.in_comp.(j) <- true;
                    comp.n_sessions <- comp.n_sessions + 1;
                    stack := j :: !stack
                  end)
                (Network.all_on_link net ~link:l))
          (Network.session_links net s);
        true
  do
    ()
  done

let sessions_of comp =
  let out = Array.make comp.n_sessions 0 in
  let k = ref 0 in
  Array.iteri
    (fun i inside ->
      if inside then begin
        out.(!k) <- i;
        incr k
      end)
    comp.in_comp;
  out

(* --- event application ------------------------------------------------ *)

let find_receiver net ~session ~node ~what =
  if session < 0 || session >= Network.session_count net then
    invalid_arg (Printf.sprintf "Dynamic.Engine.apply: %s targets unknown session %d" what session);
  let receivers = (Network.session_spec net session).Network.receivers in
  let found = ref (-1) in
  Array.iteri (fun k r -> if r = node && !found < 0 then found := k) receivers;
  if !found < 0 then
    invalid_arg
      (Printf.sprintf "Dynamic.Engine.apply: session %d has no receiver on node %d" session node);
  { Network.session; Network.index = !found }

(* Apply the surgery and name the component's seeds: the sessions
   whose own rates the event perturbs, plus (for Leave) the departed
   receiver's old path — links the new network no longer associates
   with the session but whose freed capacity lets bystanders rise. *)
let surgery net event =
  match (event : Event.t) with
  | Event.Join { session; node; weight } ->
      (Network.with_receiver ?weight net ~session ~node, [ session ], [])
  | Event.Leave { session; node } ->
      let r = find_receiver net ~session ~node ~what:"leave" in
      let old_path = Network.data_path net r in
      (Network.without_receiver net r, [ session ], old_path)
  | Event.Rho_change { session; rho } -> (Network.with_rho net session rho, [ session ], [])
  | Event.Capacity_change { link; cap } ->
      let net' = Network.with_capacity net link cap in
      let seeds =
        List.sort_uniq compare
          (List.map (fun (r : Network.receiver_id) -> r.Network.session)
             (Network.all_on_link net ~link))
      in
      (net', seeds, [])

let rebuild_rates net old_alloc ~touched =
  Array.init (Network.session_count net) (fun i ->
      if i = touched then [||] else Allocation.rates_of_session old_alloc i)

let touched_session (event : Event.t) =
  match event with
  | Event.Join { session; _ } | Event.Leave { session; _ } -> session
  | Event.Rho_change _ | Event.Capacity_change _ -> -1

let apply t event =
  let old_net = t.network in
  let old_alloc = t.allocation in
  let new_net, seeds, seed_links = surgery old_net event in
  let m = Network.session_count new_net in
  let total_receivers = Network.receiver_count new_net in
  (* Binding links of the previous epoch: where the old allocation
     left (almost) no slack, a rate change propagates to every session
     crossing.  Link ids are stable across all four surgeries. *)
  let nl = Graph.link_count (Network.graph new_net) in
  (* Per-link binding test, lazy and memoized: the component closure
     and the boundary check only ever ask about the links the touched
     sessions cross, so sweeping every link's usage up front
     (Allocation.link_usages) wastes most of the incremental path's
     budget.  Usages are judged against the allocation's own
     capacities — for the old epoch those are the pre-event
     capacities, which is what its binding set means. *)
  let binding_of alloc =
    let g = Network.graph (Allocation.network alloc) in
    let cache = Array.make (Stdlib.max nl 1) 0 in
    fun l ->
      match cache.(l) with
      | 1 -> true
      | 2 -> false
      | _ ->
          let c = Graph.capacity g l in
          let b = Allocation.link_rate alloc l >= c -. (eps_bind *. Stdlib.max 1.0 c) in
          cache.(l) <- (if b then 1 else 2);
          b
  in
  let old_binding = binding_of old_alloc in
  let comp = { in_comp = Array.make m false; n_sessions = 0 } in
  List.iter (fun s -> absorb new_net old_binding comp s) seeds;
  (* The departed receiver's old path is gone from the session's new
     link set; absorb the bystanders on its binding links directly. *)
  List.iter
    (fun l ->
      if old_binding l then
        List.iter
          (fun (r : Network.receiver_id) -> absorb new_net old_binding comp r.Network.session)
          (Network.all_on_link new_net ~link:l))
    seed_links;
  let frozen = rebuild_rates new_net old_alloc ~touched:(touched_session event) in
  let solves = ref 0 in
  let full = ref false in
  let solve_full () =
    full := true;
    Array.iteri (fun i _ -> comp.in_comp.(i) <- true) comp.in_comp;
    comp.n_sessions <- m;
    incr solves;
    Allocator.max_min ~engine:t.engine new_net
  in
  let solve_restricted () =
    incr solves;
    Allocator.max_min_partial ~engine:t.engine ~sessions:(sessions_of comp) ~frozen new_net
  in
  let alloc =
    if comp.n_sessions = 0 then
      (* Nobody's rates can move (e.g. a capacity change on an unused
         link): carry every rate forward verbatim. *)
      ref
        (Allocation.make new_net
           (Array.init m (fun i -> Allocation.rates_of_session old_alloc i)))
    else ref (if comp.n_sessions = m then solve_full () else solve_restricted ())
  in
  if comp.n_sessions > 0 && not !full then begin
    (* Expansion to a sound fixed point: a restricted solve is the
       global optimum only if no saturated link ends up carrying both
       solved and frozen receivers.  A component receiver rising onto
       a previously slack link can saturate it and demand that frozen
       receivers there drop — absorb such boundary links' sessions and
       re-solve until none remain (worst case: the full network). *)
    let inc = Network.incidence new_net in
    let seen = Array.make (Stdlib.max nl 1) false in
    let continue_ = ref true in
    while !continue_ do
      let new_binding = binding_of !alloc in
      (* A boundary link carries at least one component receiver, so
         only links on the component sessions' paths can qualify:
         enumerate those straight off the receiver CSR instead of
         scanning every link of the network. *)
      Array.fill seen 0 (Array.length seen) false;
      let boundary = ref [] in
      for i = 0 to m - 1 do
        if comp.in_comp.(i) then
          for gid = inc.Network.session_first.(i) to inc.Network.session_first.(i + 1) - 1 do
            for p = inc.Network.recv_row.(gid) to inc.Network.recv_row.(gid + 1) - 1 do
              let l = inc.Network.recv_cells.(p) in
              if not seen.(l) then begin
                seen.(l) <- true;
                if new_binding l then begin
                  (* Straight off the CSR: does the saturated link carry
                     both component and frozen receivers? *)
                  let has_in = ref false and has_out = ref false in
                  for q = inc.Network.cell_first.(inc.Network.link_row.(l))
                       to inc.Network.cell_first.(inc.Network.link_row.(l + 1)) - 1 do
                    let r = inc.Network.receiver_of_gid.(inc.Network.link_cells.(q)) in
                    if comp.in_comp.(r.Network.session) then has_in := true else has_out := true
                  done;
                  if !has_in && !has_out then boundary := l :: !boundary
                end
              end
            done
          done
      done;
      match !boundary with
      | [] -> continue_ := false
      | links ->
          let binding l = old_binding l || new_binding l in
          List.iter
            (fun l ->
              List.iter
                (fun (r : Network.receiver_id) -> absorb new_net binding comp r.Network.session)
                (Network.all_on_link new_net ~link:l))
            links;
          alloc := (if comp.n_sessions = m then solve_full () else solve_restricted ());
          if !full then continue_ := false
    done
  end;
  let component_receivers = component_receivers new_net comp in
  let reuse_fraction =
    if total_receivers = 0 || !full then 0.0
    else 1.0 -. (float_of_int component_receivers /. float_of_int total_receivers)
  in
  let stats =
    {
      kind = Event.kind event;
      component_sessions = comp.n_sessions;
      component_receivers;
      total_receivers;
      reuse_fraction;
      full_solve = !full;
      solves = !solves;
    }
  in
  t.network <- new_net;
  t.allocation <- !alloc;
  let entry = Store.push t.store ~event ~network:new_net ~allocation:!alloc in
  if Obs.Probe.enabled () then
    Obs.Probe.epoch
      {
        Obs.Events.epoch = entry.Store.epoch;
        kind = stats.kind;
        component_sessions = stats.component_sessions;
        component_receivers = stats.component_receivers;
        total_receivers = stats.total_receivers;
        reuse_fraction = stats.reuse_fraction;
        full_solve = stats.full_solve;
        solves = stats.solves;
      };
  stats

let apply_result t event = Solver_error.protect ~solver:solver_name (fun () -> apply t event)
