(** Epoch-versioned allocation store.

    Each applied churn {e batch} advances the store by one epoch: the
    batch's events, the post-batch network, and its max-min allocation
    are recorded together (a per-event apply is just a singleton
    batch).  A bounded window of recent epochs is retained so callers
    can diff allocations across events (the paper's [≼_m] comparisons
    between before/after snapshots) without the store growing with
    trace length. *)

type entry = {
  epoch : int;  (** 0 for the initial solve, then 1, 2, … per batch. *)
  events : Event.t list;
      (** The events that produced this epoch, in application order;
          [[]] at epoch 0.  A per-event apply records a singleton. *)
  network : Mmfair_core.Network.t;  (** The network {e after} the batch. *)
  allocation : Mmfair_core.Allocation.t;  (** Its max-min fair allocation. *)
}

type t

val create : ?retain:int -> Mmfair_core.Network.t -> Mmfair_core.Allocation.t -> t
(** A store seeded at epoch 0 with the initial network and allocation.
    [retain] (default 8, min 1) bounds how many recent epochs stay
    queryable. *)

val retain : t -> int
val epoch : t -> int
(** The current (newest) epoch number. *)

val current : t -> entry
(** The newest entry; never fails. *)

val push : t -> events:Event.t list -> network:Mmfair_core.Network.t -> allocation:Mmfair_core.Allocation.t -> entry
(** Record the outcome of one applied batch as the next epoch,
    evicting the oldest retained entry when the window is full. *)

val find : t -> int -> entry option
(** Look up a retained epoch by number; [None] once evicted. *)

val retained_epochs : t -> int list
(** Retained epoch numbers, newest first. *)

val fold_epochs : ?lo:int -> ?hi:int -> t -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** [fold_epochs ~lo ~hi t ~init ~f] folds [f] over the retained
    entries with [lo <= epoch <= hi], in {e ascending} epoch order
    (the order the epochs happened).  [lo] defaults to the oldest
    retained epoch, [hi] to the newest; epochs outside the retention
    window are silently absent — pair with {!retained_epochs} when the
    caller must distinguish "evicted" from "never existed".  An empty
    or inverted range folds nothing and returns [init]. *)
