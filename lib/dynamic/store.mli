(** Epoch-versioned allocation store.

    Each applied churn event advances the store by one {e epoch}: the
    event, the post-event network, and its max-min allocation are
    recorded together.  A bounded window of recent epochs is retained
    so callers can diff allocations across events (the paper's [≼_m]
    comparisons between before/after snapshots) without the store
    growing with trace length. *)

type entry = {
  epoch : int;  (** 0 for the initial solve, then 1, 2, … per event. *)
  event : Event.t option;  (** The event that produced this epoch; [None] at epoch 0. *)
  network : Mmfair_core.Network.t;  (** The network {e after} the event. *)
  allocation : Mmfair_core.Allocation.t;  (** Its max-min fair allocation. *)
}

type t

val create : ?retain:int -> Mmfair_core.Network.t -> Mmfair_core.Allocation.t -> t
(** A store seeded at epoch 0 with the initial network and allocation.
    [retain] (default 8, min 1) bounds how many recent epochs stay
    queryable. *)

val retain : t -> int
val epoch : t -> int
(** The current (newest) epoch number. *)

val current : t -> entry
(** The newest entry; never fails. *)

val push : t -> event:Event.t -> network:Mmfair_core.Network.t -> allocation:Mmfair_core.Allocation.t -> entry
(** Record the outcome of one applied event as the next epoch,
    evicting the oldest retained entry when the window is full. *)

val find : t -> int -> entry option
(** Look up a retained epoch by number; [None] once evicted. *)

val retained_epochs : t -> int list
(** Retained epoch numbers, newest first. *)
