(** The incremental churn engine: epoch-to-epoch max-min re-solves.

    On each event the engine computes the {e fairness component} — the
    sessions transitively coupled to the touched session or link
    through binding (saturated within [1e-7] relative slack) links —
    freezes every session outside it at its previous-epoch rates, and
    re-runs water-filling only inside
    ({!Mmfair_core.Allocator.max_min_partial}).  A restricted solve
    whose result saturates a link shared with frozen sessions is not
    yet sound; such boundary links' sessions are absorbed and the
    component re-solved until no saturated link crosses the boundary,
    at which point the problem decomposes and the restricted optimum
    {e is} the global max-min fair allocation (DESIGN.md §11).  When
    the component grows to the whole network the engine falls back to
    a plain from-scratch solve.

    The component/freeze/boundary machinery lives in
    {!Mmfair_core.Component}; the application path lives in {!Batch} —
    {!apply} is exactly [Batch.apply] with a singleton batch ([t] {e
    is} [Batch.t], and the equality is exposed so callers can mix
    per-event and coalesced application on one engine).  This module
    keeps the original per-event interface: an
    {!Mmfair_core.Allocator.engine} choice instead of a
    {!Mmfair_core.Solve_engine.t}, and per-event stats carrying the
    event's kind.

    The differential harness ([test/churn_differential.ml], CI-gated)
    asserts after every event that the result matches
    [Allocator.max_min] from scratch within [1e-9]. *)

type stats = {
  kind : string;  (** {!Event.kind} of the applied event. *)
  component_sessions : int;  (** Sessions re-solved this epoch. *)
  component_receivers : int;  (** Receivers re-solved this epoch. *)
  total_receivers : int;  (** Receivers in the post-event network. *)
  reuse_fraction : float;  (** Receivers carried over frozen / total; 0 on a full solve. *)
  full_solve : bool;  (** Whether the engine fell back to from-scratch. *)
  solves : int;  (** Water-filling passes run (1 + boundary expansions; 0 when nothing could move). *)
}
(** What one {!apply} did — also emitted as an [epoch] probe event
    ({!Mmfair_obs.Events.epoch}) for the telemetry sinks. *)

type t = Batch.t
(** A churn engine {e is} a batch engine; {!create} merely fixes the
    solver to {!Mmfair_core.Solve_engine.allocator} over the chosen
    allocator engine. *)

val create :
  ?engine:Mmfair_core.Allocator.engine ->
  ?domains:int ->
  ?retain:int ->
  ?allocation:Mmfair_core.Allocation.t ->
  Mmfair_core.Network.t ->
  t
(** [create net] solves epoch 0 from scratch and seeds the store.
    [engine] (default [`Auto]) is used for every subsequent solve;
    [domains] (default [1]) runs each epoch's disjoint component
    solves on the shared domain pool of that size ({!Batch.pool}) —
    allocations are bitwise identical at every count;
    [retain] bounds the store window ({!Store.create}).  [allocation]
    is a {e trusted} warm restore: the caller asserts it is the
    max-min fair allocation of [net] (used by benchmarks to reset an
    engine between repetitions without paying the initial solve) —
    passing anything else silently corrupts every later epoch. *)

val create_result :
  ?engine:Mmfair_core.Allocator.engine ->
  ?domains:int ->
  ?retain:int ->
  ?allocation:Mmfair_core.Allocation.t ->
  Mmfair_core.Network.t ->
  (t, Mmfair_core.Solver_error.t) result
(** Typed-error variant of {!create}. *)

val network : t -> Mmfair_core.Network.t
(** The current (post-last-event) network. *)

val allocation : t -> Mmfair_core.Allocation.t
(** The current epoch's max-min fair allocation. *)

val epoch : t -> int
val store : t -> Store.t

val apply : t -> Event.t -> stats
(** Apply one churn event: network surgery, component construction,
    restricted solve(s), store push, [epoch] probe emission.  Raises
    [Invalid_argument] on an event that does not type-check against
    the current network (unknown session/link/node, leave of an
    absent receiver, a join that would empty-out validation — see
    {!Mmfair_core.Network.with_receiver}) and {!Mmfair_core.Solver_error.Error}
    as the underlying solver does.  On a raise the engine state is
    unchanged (surgery and solve happen before any mutation). *)

val apply_result : t -> Event.t -> (stats, Mmfair_core.Solver_error.t) result
(** Typed-error variant of {!apply}. *)
