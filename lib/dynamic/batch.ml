module Graph = Mmfair_topology.Graph
module Network = Mmfair_core.Network
module Allocation = Mmfair_core.Allocation
module Component = Mmfair_core.Component
module Solve_engine = Mmfair_core.Solve_engine
module Solver_error = Mmfair_core.Solver_error
module Obs = Mmfair_obs

type stats = {
  events : int;
  net_events : int;
  cancelled : int;
  components : int;
  component_sessions : int;
  component_receivers : int;
  total_receivers : int;
  reuse_fraction : float;
  full_solve : bool;
  solves : int;
}

type scheduler = { run : (unit -> unit) list -> unit }

let sequential = { run = (fun tasks -> List.iter (fun f -> f ()) tasks) }

let pool ~domains =
  if domains < 1 then
    invalid_arg (Printf.sprintf "Dynamic.Batch.pool: domains must be >= 1 (got %d)" domains);
  let p = Mmfair_core.Domain_pool.shared ~domains in
  { run = (fun tasks -> Mmfair_core.Domain_pool.run p tasks) }

type t = {
  solver : Solve_engine.t;
  scheduler : scheduler;
  store : Store.t;
  mutable network : Network.t;
  mutable allocation : Allocation.t;
}

let solver_name = "Dynamic"

let create ?(solver = Solve_engine.default) ?scheduler ?(domains = 1) ?retain ?allocation net =
  let scheduler =
    match scheduler with
    | Some s -> s
    | None ->
        if domains < 1 then
          invalid_arg
            (Printf.sprintf "Dynamic.Batch.create: domains must be >= 1 (got %d)" domains)
        else if domains > 1 then pool ~domains
        else sequential
  in
  let allocation =
    match allocation with
    | Some a -> a
    | None ->
        let (module E : Solve_engine.S) = solver in
        E.solve net
  in
  { solver; scheduler; store = Store.create ?retain net allocation; network = net; allocation }

let create_result ?solver ?scheduler ?domains ?retain ?allocation net =
  Solver_error.protect ~solver:solver_name (fun () ->
      create ?solver ?scheduler ?domains ?retain ?allocation net)

let network t = t.network
let allocation t = t.allocation
let epoch t = Store.epoch t.store
let store t = t.store
let solver t = t.solver

(* --- event application ------------------------------------------------ *)

let find_receiver_in ~session_count ~spec ~session ~node ~what =
  if session < 0 || session >= session_count then
    invalid_arg (Printf.sprintf "Dynamic.Engine.apply: %s targets unknown session %d" what session);
  let receivers = (spec session).Network.receivers in
  let found = ref (-1) in
  Array.iteri (fun k r -> if r = node && !found < 0 then found := k) receivers;
  if !found < 0 then
    invalid_arg
      (Printf.sprintf "Dynamic.Engine.apply: session %d has no receiver on node %d" session node);
  { Network.session; Network.index = !found }

let find_receiver net ~session ~node ~what =
  find_receiver_in ~session_count:(Network.session_count net) ~spec:(Network.session_spec net)
    ~session ~node ~what

let apply_event net (event : Event.t) =
  match event with
  | Event.Join { session; node; weight } -> Network.with_receiver ?weight net ~session ~node
  | Event.Leave { session; node } ->
      Network.without_receiver net (find_receiver net ~session ~node ~what:"leave")
  | Event.Rho_change { session; rho } -> Network.with_rho net session rho
  | Event.Capacity_change { link; cap } -> Network.with_capacity net link cap

(* Same event semantics over the surgery builder: validation runs
   against the accumulated mid-batch state (a leave sees the batch's
   earlier joins), and the whole batch pays one incidence rebuild at
   commit instead of one per event. *)
let apply_surgery_event srg (event : Event.t) =
  match event with
  | Event.Join { session; node; weight } -> Network.surgery_join ?weight srg ~session ~node
  | Event.Leave { session; node } ->
      Network.surgery_leave srg
        (find_receiver_in ~session_count:(Network.surgery_session_count srg)
           ~spec:(Network.surgery_spec srg) ~session ~node ~what:"leave")
  | Event.Rho_change { session; rho } -> Network.surgery_rho srg session rho
  | Event.Capacity_change { link; cap } -> Network.surgery_capacity srg link cap

(* --- coalescing diff --------------------------------------------------- *)

(* What a session looks like after the whole batch, relative to before.
   Coalescing is a *state* diff, not an event-log transform: the max-min
   allocation depends only on the final network, so a join/leave pair on
   one node nets out to nothing and repeated rho/cap writes keep only
   the last value, with no bookkeeping of the path taken. *)
type session_diff = {
  changed : bool;
      (* The receiver multiset (node, weight) moved; rates cannot be
         carried over (and receiver indices may have shifted). *)
  arrived : int; (* Final nodes absent before, or present with a new weight. *)
  departed : int; (* Initial nodes absent after. *)
  frozen_row : float array;
      (* Old rates remapped to the final receiver order by node (0.0
         for arrived or weight-changed nodes).  For an unchanged
         session this is its previous row {e shared}, not copied —
         rows flow pin → solve → next epoch's allocation by pointer,
         and nobody mutates a row once built.  A changed session's row
         is never its own pin (it is always inside some solved group)
         but serves as background load when *other* disjoint groups
         solve with this session frozen. *)
  departed_paths : Mmfair_topology.Routing.path list;
      (* Old data-paths of the net-departed receivers: links the new
         network no longer associates with the session but whose freed
         capacity lets bystanders rise. *)
}

(* An unchanged session's pin is its previous row shared by pointer:
   materializing a copy per session would put an O(receivers) term on
   every batch, which is exactly what the event-derived candidate sets
   below exist to avoid. *)
let unchanged_diff old_alloc i =
  {
    changed = false;
    arrived = 0;
    departed = 0;
    frozen_row = Allocation.unsafe_rates_of_session old_alloc i;
    departed_paths = [];
  }

let diff_session old_net old_alloc new_net i =
  let old_spec = Network.session_spec old_net i in
  let new_spec = Network.session_spec new_net i in
  let old_recv = old_spec.Network.receivers in
  let new_recv = new_spec.Network.receivers in
  (* Surgeries copy the sessions array but share untouched specs (and
     their receiver/weight arrays) physically, so pointer equality
     proves the membership never moved — the common case for every
     session a batch does not touch.  A touched-but-netted-out session
     (leave + rejoin) gets fresh arrays and takes the full diff. *)
  if old_recv == new_recv && old_spec.Network.weights == new_spec.Network.weights then
    unchanged_diff old_alloc i
  else
  let n_old = Array.length old_recv and n_new = Array.length new_recv in
  (* Nodes are distinct within a session (the paper's τ restriction),
     so node -> old index is a bijection on the old membership. *)
  let old_index = Hashtbl.create (2 * n_old) in
  Array.iteri (fun k node -> Hashtbl.replace old_index node k) old_recv;
  let arrived = ref 0 in
  let frozen_row = Array.make n_new 0.0 in
  let ok = ref true in
  Array.iteri
    (fun k node ->
      match Hashtbl.find_opt old_index node with
      | None ->
          incr arrived;
          ok := false
      | Some k_old ->
          let w_old = Network.weight old_net { Network.session = i; index = k_old } in
          let w_new = Network.weight new_net { Network.session = i; index = k } in
          if w_old <> w_new then begin
            incr arrived;
            ok := false
          end
          else frozen_row.(k) <- Allocation.rate old_alloc { Network.session = i; index = k_old })
    new_recv;
  let departed = ref 0 in
  let departed_paths = ref [] in
  let new_nodes = Hashtbl.create (2 * n_new) in
  Array.iter (fun node -> Hashtbl.replace new_nodes node ()) new_recv;
  Array.iteri
    (fun k node ->
      if not (Hashtbl.mem new_nodes node) then begin
        incr departed;
        departed_paths :=
          Network.data_path old_net { Network.session = i; index = k } :: !departed_paths
      end)
    old_recv;
  let changed = (not !ok) || !departed > 0 in
  {
    changed;
    arrived = !arrived;
    departed = !departed;
    frozen_row;
    departed_paths = !departed_paths;
  }

let apply t events =
  if events = [] then invalid_arg "Dynamic.Batch.apply: empty batch";
  let old_net = t.network in
  let old_alloc = t.allocation in
  (* Surgeries run on a local accumulator: a mid-batch validation
     failure (unknown session, leave of an absent receiver, …) raises
     before any engine state mutates, exactly like the per-event
     path.  A single event takes the incremental splice; a real batch
     goes through the coalesced surgery builder so K events cost one
     incidence rebuild, not K. *)
  let new_net =
    match events with
    | [ e ] -> apply_event old_net e
    | _ ->
        let srg = Network.surgery_begin old_net in
        List.iter (apply_surgery_event srg) events;
        Network.surgery_commit srg
  in
  let total_receivers = Network.receiver_count new_net in
  let raw = List.length events in
  (* Net out the batch per entity.  Only sessions and links named by
     some event can differ between the two networks — surgeries share
     every untouched spec physically and the graph copy preserves
     unnamed capacities — so the batch's own event list, deduplicated,
     is the complete candidate set, and only candidates are diffed at
     all.  The old-vs-new comparison sweeps over all sessions and all
     links are gone from the per-batch cost; what remains is work
     proportional to the events themselves (plus the pointer-memcpy
     of the pinned-row array below). *)
  let cand_sessions = Hashtbl.create 16 in
  let cand_links = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Join { session; _ } | Event.Leave { session; _ } | Event.Rho_change { session; _ }
        ->
          Hashtbl.replace cand_sessions session ()
      | Event.Capacity_change { link; _ } -> Hashtbl.replace cand_links link ())
    events;
  let old_g = Network.graph old_net and new_g = Network.graph new_net in
  let changed_links = ref [] in
  let cap_net = ref 0 in
  Hashtbl.iter
    (fun l () ->
      if Graph.capacity old_g l <> Graph.capacity new_g l then begin
        incr cap_net;
        changed_links := l :: !changed_links
      end)
    cand_links;
  (* Sorted for deterministic absorb order regardless of hashing. *)
  let changed_links = List.sort Stdlib.compare !changed_links in
  let cand_diffs =
    List.map
      (fun i -> (i, diff_session old_net old_alloc new_net i))
      (List.sort Stdlib.compare (Hashtbl.fold (fun i () acc -> i :: acc) cand_sessions []))
  in
  let rho_net = ref 0 in
  let membership_net = ref 0 in
  let seeds = ref [] in
  List.iter
    (fun (i, d) ->
      membership_net := !membership_net + d.arrived + d.departed;
      let rho_moved = Network.rho old_net i <> Network.rho new_net i in
      if rho_moved then incr rho_net;
      if d.changed || rho_moved then seeds := i :: !seeds)
    cand_diffs;
  let seeds = List.rev !seeds in
  let net_events = !membership_net + !rho_net + !cap_net in
  let cancelled = raw - net_events in
  (* The union fairness component: everything any surviving change can
     reach over the previous epoch's binding links. *)
  let comp = Component.create new_net in
  let old_binding = Component.binding old_alloc in
  List.iter (fun i -> Component.absorb comp ~binding:old_binding i) seeds;
  List.iter
    (fun l ->
      List.iter
        (fun (r : Network.receiver_id) ->
          Component.absorb comp ~binding:old_binding r.Network.session)
        (Network.all_on_link new_net ~link:l))
    changed_links;
  (* Departed receivers' old paths are gone from their sessions' new
     link sets; absorb the bystanders on their binding links directly. *)
  List.iter
    (fun (_, d) ->
      List.iter
        (fun path -> List.iter (fun l -> Component.absorb_link comp ~binding:old_binding l) path)
        d.departed_paths)
    cand_diffs;
  (* Unchanged sessions pin their previous rows by pointer — one
     memcpy of the outer array — and only the diffed candidates get a
     remapped row. *)
  let pinned = Array.copy (Allocation.unsafe_rows old_alloc) in
  List.iter (fun (i, d) -> pinned.(i) <- d.frozen_row) cand_diffs;
  let (module E : Solve_engine.S) = t.solver in
  let has_partial = E.capabilities.Solve_engine.partial in
  let solves = ref 0 in
  let full = ref false in
  (* Every water-filling pass goes through the scheduler seam — one
     task per disjoint group.  Each task writes its allocation into
     its own slot, so tasks never share mutable state; a slot the
     scheduler left empty is a typed scheduler failure. *)
  let run_tasks fs =
    let out = Array.make (List.length fs) None in
    t.scheduler.run (List.mapi (fun k f () -> out.(k) <- Some (f ())) fs);
    Array.mapi
      (fun k slot ->
        match slot with
        | Some a -> a
        | None ->
            Solver_error.raise_error
              (Solver_error.Scheduler_failure
                 { solver = solver_name; task = k; what = "scheduler dropped the solve task" }))
      out
  in
  let solve_full () =
    full := true;
    Component.fill comp;
    incr solves;
    (run_tasks [ (fun () -> E.solve new_net) ]).(0)
  in
  (* The frozen background a group solves against.  Fellow component
     members (always solved by *some* group) are pinned at zero, not
     at their carried rates: a changed session's carry row remaps old
     rates onto new paths and can overfill a link the victim group
     never crosses, and an infeasible background poisons the whole
     water-filling (the engines see no headroom anywhere).  Zeros keep
     every background feasible — non-members' old rates fit the new
     capacities because every crosser of a capacity-changed link was
     absorbed — at worst a group rises too high onto a link another
     group also wants, which the merged-candidate binding check
     catches and resolves by merging.  Recomputed per round: expansion
     absorbs new members. *)
  let background () =
    let bg = Array.copy pinned in
    Array.iter (fun i -> bg.(i) <- Array.make (Array.length pinned.(i)) 0.0) (Component.sessions comp);
    bg
  in
  (* Scheduler-task granularity: a restricted solve still pays an
     O(sessions) row copy to assemble its result no matter how few
     sessions it lists, so scheduling every tiny component as its own
     task would make a 64-cluster flash crowd pay sixty-four of those
     where the old union solve paid one.  Groups are packed, in root
     order, into tasks of at least [min_task_sessions] sessions;
     components stay the unit of independence and merging, packing
     only amortizes per-solve assembly.  Packing is deterministic —
     independent of the domain count — so allocations stay bitwise
     identical at every count. *)
  let min_task_sessions = 256 in
  let pack_groups groups =
    let packs, last, _ =
      List.fold_left
        (fun (packs, cur, cur_n) g ->
          if cur_n >= min_task_sessions then (List.rev cur :: packs, [ g ], Array.length g)
          else (packs, g :: cur, cur_n + Array.length g))
        ([], [], 0) groups
    in
    List.rev (match last with [] -> packs | _ -> List.rev last :: packs)
  in
  let solve_groups groups =
    let packs = pack_groups groups in
    solves := !solves + List.length packs;
    let frozen = background () in
    let solved =
      run_tasks
        (List.map
           (fun pack ->
             let sessions = Array.concat pack in
             fun () -> E.solve_partial ~sessions ~frozen new_net)
           packs)
    in
    (* Fan the pack allocations back out, one per group, aligned with
       the incoming group order. *)
    List.concat (List.mapi (fun k pack -> List.map (fun _ -> solved.(k)) pack) packs)
  in
  (* Stitch per-group solves into one candidate allocation: every
     group solved over the same pinned background, and the groups are
     disjoint, so each group's rows come from its own solve and every
     unsolved session keeps its pin.  Rows are shared by pointer in
     both directions (no row is ever mutated once built); only the
     outer per-session array is fresh. *)
  let merge groups allocs =
    match allocs with
    | [ a ] -> a
    | _ ->
        let rates = Array.copy pinned in
        List.iter2
          (fun g a -> Array.iter (fun i -> rates.(i) <- Allocation.unsafe_rates_of_session a i) g)
          groups allocs;
        Allocation.unsafe_of_rows new_net rates
  in
  let final_components = ref 0 in
  let alloc =
    if Component.is_empty comp then
      (* Nobody's rates can move (pure cancellation, or a capacity
         change on an unused link): carry every rate forward verbatim,
         sharing the previous epoch's rows.  All frozen rows are full
         here — only unchanged sessions leave the component empty. *)
      Allocation.unsafe_of_rows new_net pinned
    else if
      (not has_partial)
      || (Component.is_full comp && match Component.groups comp with [ _ ] -> true | _ -> false)
    then begin
      (* A full component in one piece pins nothing — solve fresh.  A
         full component that still splits into disjoint groups (e.g. a
         flash crowd touching every cluster of a link-disjoint
         network) keeps the partitioned path: the groups are
         independent solves, one scheduler task each. *)
      let a = solve_full () in
      final_components := 1;
      a
    end
    else begin
      let groups = ref (Component.groups comp) in
      let allocs = ref (solve_groups !groups) in
      let merged = ref (merge !groups !allocs) in
      (* Expansion to a sound fixed point: a restricted solve is the
         global optimum only if no saturated link ends up carrying
         both solved and frozen receivers.  With disjoint groups
         "frozen" includes the *other* groups, and a link can look
         saturated in three distinct views: under the previous epoch
         (its freeze certificates), under one group's own solve (the
         group froze against it while the merged candidate has the
         far side dropping), or under the merged candidate (two
         groups independently rose onto a shared link and overcommit
         it).  A boundary link in any view is absorbed — which also
         merges the groups leaning on it — and only the dirtied
         groups re-solve, until no view flags anything (worst case:
         the full network). *)
      let continue_ = ref true in
      while !continue_ do
        let merged_binding = Component.binding !merged in
        let flagged = ref false in
        List.iter2
          (fun g a ->
            let view_binding =
              match !allocs with [ _ ] -> merged_binding | _ -> Component.binding a
            in
            let bind l = old_binding l || view_binding l || merged_binding l in
            match Component.group_boundary_links comp ~binding:bind g with
            | [] -> ()
            | links ->
                flagged := true;
                List.iter (fun l -> Component.absorb_link comp ~binding:bind l) links)
          !groups !allocs;
        if not !flagged then continue_ := false
        else begin
          let next_groups = Component.groups comp in
          match next_groups with
          | [ g ] when Array.length g = Network.session_count new_net ->
              (* Everything leans on everything: the worst case. *)
              merged := solve_full ();
              continue_ := false
          | _ ->
              (* Memberships only grow and a group's root stays its
                 smallest session, so a regrouped partition can be
                 diffed against the previous one by (root, size): a
                 match *is* the same session set — keep its
                 allocation; everything else (grown or merged groups)
                 re-solves. *)
              let prev = Hashtbl.create 16 in
              List.iter2
                (fun g a -> Hashtbl.replace prev (g.(0), Array.length g) a)
                !groups !allocs;
              let dirty =
                List.filter (fun g -> not (Hashtbl.mem prev (g.(0), Array.length g))) next_groups
              in
              let fresh = Hashtbl.create 16 in
              List.iter2
                (fun g a -> Hashtbl.replace fresh (g.(0), Array.length g) a)
                dirty (solve_groups dirty);
              groups := next_groups;
              allocs :=
                List.map
                  (fun g ->
                    let key = (g.(0), Array.length g) in
                    match (Hashtbl.find_opt prev key, Hashtbl.find_opt fresh key) with
                    | Some a, _ | None, Some a -> a
                    | None, None ->
                        (* Unreachable by construction: [dirty] is
                           exactly the groups absent from [prev], and
                           [solve_groups] returns one allocation per
                           group.  Surface a miss as a typed error with
                           the group's root as context, not a bare
                           [Not_found]. *)
                        Solver_error.raise_error
                          (Solver_error.Scheduler_failure
                             {
                               solver = solver_name;
                               task = g.(0);
                               what =
                                 Printf.sprintf
                                   "regrouped component (root %d, %d sessions) has neither a \
                                    carried nor a fresh solve"
                                   g.(0) (Array.length g);
                             }))
                  next_groups;
              merged := merge !groups !allocs
        end
      done;
      final_components := (if !full then 1 else List.length !groups);
      !merged
    end
  in
  let alloc = ref alloc in
  let component_receivers = Component.receiver_count comp in
  let reuse_fraction =
    if total_receivers = 0 || !full then 0.0
    else 1.0 -. (float_of_int component_receivers /. float_of_int total_receivers)
  in
  let stats =
    {
      events = raw;
      net_events;
      cancelled;
      components = !final_components;
      component_sessions = Component.cardinal comp;
      component_receivers;
      total_receivers;
      reuse_fraction;
      full_solve = !full;
      solves = !solves;
    }
  in
  t.network <- new_net;
  t.allocation <- !alloc;
  let entry = Store.push t.store ~events ~network:new_net ~allocation:!alloc in
  if Obs.Probe.enabled () then begin
    let kind = match events with [ e ] -> Event.kind e | _ -> "batch" in
    Obs.Probe.epoch
      {
        Obs.Events.epoch = entry.Store.epoch;
        kind;
        component_sessions = stats.component_sessions;
        component_receivers = stats.component_receivers;
        total_receivers = stats.total_receivers;
        reuse_fraction = stats.reuse_fraction;
        full_solve = stats.full_solve;
        solves = stats.solves;
      };
    Obs.Probe.batch
      { Obs.Events.b_epoch = entry.Store.epoch; events = raw; net_events; cancelled };
    (* Fairness telemetry: how fair the landed allocation is and how
       hard rates moved this epoch.  [pinned] rows are the previous
       rates remapped to the new receiver order by node (0 for
       arrivals), so the per-receiver delta matches receivers across
       the splice and counts a join's rate as a move from zero. *)
    let max_delta = ref 0.0 in
    for s = 0 to Network.session_count new_net - 1 do
      let now = Allocation.unsafe_rates_of_session !alloc s in
      let before = pinned.(s) in
      Array.iteri
        (fun k r ->
          let d = Float.abs (r -. before.(k)) in
          if d > !max_delta then max_delta := d)
        now
    done;
    let largest =
      if Component.is_empty comp then 0
      else if stats.full_solve then Component.cardinal comp
      else
        List.fold_left
          (fun acc g -> Stdlib.max acc (Array.length g))
          0 (Component.groups comp)
    in
    Obs.Probe.fairness
      {
        Obs.Events.f_epoch = entry.Store.epoch;
        jain = Mmfair_core.Metrics.jain_index !alloc;
        max_delta_rate = !max_delta;
        components = stats.components;
        component_sessions = stats.component_sessions;
        largest_component = largest;
      }
  end;
  stats

let apply_result t events = Solver_error.protect ~solver:solver_name (fun () -> apply t events)
