module Graph = Mmfair_topology.Graph
module Network = Mmfair_core.Network
module Allocation = Mmfair_core.Allocation
module Component = Mmfair_core.Component
module Solve_engine = Mmfair_core.Solve_engine
module Solver_error = Mmfair_core.Solver_error
module Obs = Mmfair_obs

type stats = {
  events : int;
  net_events : int;
  cancelled : int;
  component_sessions : int;
  component_receivers : int;
  total_receivers : int;
  reuse_fraction : float;
  full_solve : bool;
  solves : int;
}

type scheduler = { run : (unit -> unit) list -> unit }

let sequential = { run = (fun tasks -> List.iter (fun f -> f ()) tasks) }

type t = {
  solver : Solve_engine.t;
  scheduler : scheduler;
  store : Store.t;
  mutable network : Network.t;
  mutable allocation : Allocation.t;
}

let solver_name = "Dynamic"

let create ?(solver = Solve_engine.default) ?(scheduler = sequential) ?retain ?allocation net =
  let allocation =
    match allocation with
    | Some a -> a
    | None ->
        let (module E : Solve_engine.S) = solver in
        E.solve net
  in
  { solver; scheduler; store = Store.create ?retain net allocation; network = net; allocation }

let create_result ?solver ?scheduler ?retain ?allocation net =
  Solver_error.protect ~solver:solver_name (fun () ->
      create ?solver ?scheduler ?retain ?allocation net)

let network t = t.network
let allocation t = t.allocation
let epoch t = Store.epoch t.store
let store t = t.store
let solver t = t.solver

(* --- event application ------------------------------------------------ *)

let find_receiver net ~session ~node ~what =
  if session < 0 || session >= Network.session_count net then
    invalid_arg (Printf.sprintf "Dynamic.Engine.apply: %s targets unknown session %d" what session);
  let receivers = (Network.session_spec net session).Network.receivers in
  let found = ref (-1) in
  Array.iteri (fun k r -> if r = node && !found < 0 then found := k) receivers;
  if !found < 0 then
    invalid_arg
      (Printf.sprintf "Dynamic.Engine.apply: session %d has no receiver on node %d" session node);
  { Network.session; Network.index = !found }

let apply_event net (event : Event.t) =
  match event with
  | Event.Join { session; node; weight } -> Network.with_receiver ?weight net ~session ~node
  | Event.Leave { session; node } ->
      Network.without_receiver net (find_receiver net ~session ~node ~what:"leave")
  | Event.Rho_change { session; rho } -> Network.with_rho net session rho
  | Event.Capacity_change { link; cap } -> Network.with_capacity net link cap

(* --- coalescing diff --------------------------------------------------- *)

(* What a session looks like after the whole batch, relative to before.
   Coalescing is a *state* diff, not an event-log transform: the max-min
   allocation depends only on the final network, so a join/leave pair on
   one node nets out to nothing and repeated rho/cap writes keep only
   the last value, with no bookkeeping of the path taken. *)
type session_diff = {
  changed : bool;
      (* The receiver multiset (node, weight) moved; rates cannot be
         carried over (and receiver indices may have shifted). *)
  arrived : int; (* Final nodes absent before, or present with a new weight. *)
  departed : int; (* Initial nodes absent after. *)
  frozen_row : float array;
      (* Old rates remapped to the final receiver order by node; [||]
         when [changed] (the row is ignored for seeded sessions). *)
  departed_paths : Mmfair_topology.Routing.path list;
      (* Old data-paths of the net-departed receivers: links the new
         network no longer associates with the session but whose freed
         capacity lets bystanders rise. *)
}

let unchanged_diff old_alloc i n =
  {
    changed = false;
    arrived = 0;
    departed = 0;
    frozen_row = Array.init n (fun index -> Allocation.rate old_alloc { Network.session = i; index });
    departed_paths = [];
  }

let diff_session old_net old_alloc new_net i =
  let old_spec = Network.session_spec old_net i in
  let new_spec = Network.session_spec new_net i in
  let old_recv = old_spec.Network.receivers in
  let new_recv = new_spec.Network.receivers in
  (* Surgeries copy the sessions array but share untouched specs (and
     their receiver/weight arrays) physically, so pointer equality
     proves the membership never moved — the common case for every
     session a batch does not touch.  A touched-but-netted-out session
     (leave + rejoin) gets fresh arrays and takes the full diff. *)
  if old_recv == new_recv && old_spec.Network.weights == new_spec.Network.weights then
    unchanged_diff old_alloc i (Array.length new_recv)
  else
  let n_old = Array.length old_recv and n_new = Array.length new_recv in
  (* Nodes are distinct within a session (the paper's τ restriction),
     so node -> old index is a bijection on the old membership. *)
  let old_index = Hashtbl.create (2 * n_old) in
  Array.iteri (fun k node -> Hashtbl.replace old_index node k) old_recv;
  let arrived = ref 0 in
  let frozen_row = Array.make n_new 0.0 in
  let ok = ref true in
  Array.iteri
    (fun k node ->
      match Hashtbl.find_opt old_index node with
      | None ->
          incr arrived;
          ok := false
      | Some k_old ->
          let w_old = Network.weight old_net { Network.session = i; index = k_old } in
          let w_new = Network.weight new_net { Network.session = i; index = k } in
          if w_old <> w_new then begin
            incr arrived;
            ok := false
          end
          else if !ok then
            frozen_row.(k) <- Allocation.rate old_alloc { Network.session = i; index = k_old })
    new_recv;
  let departed = ref 0 in
  let departed_paths = ref [] in
  let new_nodes = Hashtbl.create (2 * n_new) in
  Array.iter (fun node -> Hashtbl.replace new_nodes node ()) new_recv;
  Array.iteri
    (fun k node ->
      if not (Hashtbl.mem new_nodes node) then begin
        incr departed;
        departed_paths :=
          Network.data_path old_net { Network.session = i; index = k } :: !departed_paths
      end)
    old_recv;
  let changed = (not !ok) || !departed > 0 in
  {
    changed;
    arrived = !arrived;
    departed = !departed;
    frozen_row = (if changed then [||] else frozen_row);
    departed_paths = !departed_paths;
  }

let apply t events =
  if events = [] then invalid_arg "Dynamic.Batch.apply: empty batch";
  let old_net = t.network in
  let old_alloc = t.allocation in
  (* Surgeries run on a local accumulator: a mid-batch validation
     failure (unknown session, leave of an absent receiver, …) raises
     before any engine state mutates, exactly like the per-event
     path. *)
  let new_net = List.fold_left apply_event old_net events in
  let m = Network.session_count new_net in
  let total_receivers = Network.receiver_count new_net in
  let raw = List.length events in
  (* Net out the batch per entity. *)
  let diffs = Array.init m (fun i -> diff_session old_net old_alloc new_net i) in
  let old_g = Network.graph old_net and new_g = Network.graph new_net in
  let changed_links = ref [] in
  let cap_net = ref 0 in
  for l = Graph.link_count new_g - 1 downto 0 do
    if Graph.capacity old_g l <> Graph.capacity new_g l then begin
      incr cap_net;
      changed_links := l :: !changed_links
    end
  done;
  let rho_net = ref 0 in
  let seeds = ref [] in
  for i = m - 1 downto 0 do
    let rho_moved = Network.rho old_net i <> Network.rho new_net i in
    if rho_moved then incr rho_net;
    if diffs.(i).changed || rho_moved then seeds := i :: !seeds
  done;
  let net_events =
    Array.fold_left (fun acc d -> acc + d.arrived + d.departed) 0 diffs + !rho_net + !cap_net
  in
  let cancelled = raw - net_events in
  (* The union fairness component: everything any surviving change can
     reach over the previous epoch's binding links. *)
  let comp = Component.create new_net in
  let old_binding = Component.binding old_alloc in
  List.iter (fun i -> Component.absorb comp ~binding:old_binding i) !seeds;
  List.iter
    (fun l ->
      List.iter
        (fun (r : Network.receiver_id) ->
          Component.absorb comp ~binding:old_binding r.Network.session)
        (Network.all_on_link new_net ~link:l))
    !changed_links;
  (* Departed receivers' old paths are gone from their sessions' new
     link sets; absorb the bystanders on their binding links directly. *)
  Array.iter
    (fun d ->
      List.iter
        (fun path -> List.iter (fun l -> Component.absorb_link comp ~binding:old_binding l) path)
        d.departed_paths)
    diffs;
  let frozen = Array.map (fun d -> d.frozen_row) diffs in
  let (module E : Solve_engine.S) = t.solver in
  let has_partial = E.capabilities.Solve_engine.partial in
  let solves = ref 0 in
  let full = ref false in
  (* Every water-filling pass goes through the scheduler seam as a task
     list (singleton today).  Domain-sharded component solves slot in
     here: partition the component, one task per shard. *)
  let schedule f =
    let out = ref None in
    t.scheduler.run [ (fun () -> out := Some (f ())) ];
    match !out with
    | Some a -> a
    | None -> failwith "Dynamic.Batch.apply: scheduler dropped the solve task"
  in
  let solve_full () =
    full := true;
    Component.fill comp;
    incr solves;
    schedule (fun () -> E.solve new_net)
  in
  let solve_restricted () =
    incr solves;
    let sessions = Component.sessions comp in
    schedule (fun () -> E.solve_partial ~sessions ~frozen new_net)
  in
  let alloc =
    if Component.is_empty comp then
      (* Nobody's rates can move (pure cancellation, or a capacity
         change on an unused link): carry every rate forward verbatim.
         All frozen rows are full here — only unchanged sessions leave
         the component empty. *)
      ref (Allocation.make new_net (Array.map Array.copy frozen))
    else if Component.is_full comp || not has_partial then ref (solve_full ())
    else ref (solve_restricted ())
  in
  if (not (Component.is_empty comp)) && not !full then begin
    (* Expansion to a sound fixed point: a restricted solve is the
       global optimum only if no saturated link ends up carrying both
       solved and frozen receivers.  A component receiver rising onto
       a previously slack link can saturate it and demand that frozen
       receivers there drop — absorb such boundary links' sessions and
       re-solve until none remain (worst case: the full network). *)
    let continue_ = ref true in
    while !continue_ do
      let new_binding = Component.binding !alloc in
      match Component.boundary_links comp ~binding:new_binding with
      | [] -> continue_ := false
      | links ->
          let binding l = old_binding l || new_binding l in
          List.iter (fun l -> Component.absorb_link comp ~binding l) links;
          alloc :=
            (if Component.is_full comp || not has_partial then solve_full ()
             else solve_restricted ());
          if !full then continue_ := false
    done
  end;
  let component_receivers = Component.receiver_count comp in
  let reuse_fraction =
    if total_receivers = 0 || !full then 0.0
    else 1.0 -. (float_of_int component_receivers /. float_of_int total_receivers)
  in
  let stats =
    {
      events = raw;
      net_events;
      cancelled;
      component_sessions = Component.cardinal comp;
      component_receivers;
      total_receivers;
      reuse_fraction;
      full_solve = !full;
      solves = !solves;
    }
  in
  t.network <- new_net;
  t.allocation <- !alloc;
  let entry = Store.push t.store ~events ~network:new_net ~allocation:!alloc in
  if Obs.Probe.enabled () then begin
    let kind = match events with [ e ] -> Event.kind e | _ -> "batch" in
    Obs.Probe.epoch
      {
        Obs.Events.epoch = entry.Store.epoch;
        kind;
        component_sessions = stats.component_sessions;
        component_receivers = stats.component_receivers;
        total_receivers = stats.total_receivers;
        reuse_fraction = stats.reuse_fraction;
        full_solve = stats.full_solve;
        solves = stats.solves;
      };
    Obs.Probe.batch
      { Obs.Events.b_epoch = entry.Store.epoch; events = raw; net_events; cancelled }
  end;
  stats

let apply_result t events = Solver_error.protect ~solver:solver_name (fun () -> apply t events)
