module Graph = Mmfair_topology.Graph

type t =
  | Join of { session : int; node : Graph.node; weight : float option }
  | Leave of { session : int; node : Graph.node }
  | Rho_change of { session : int; rho : float }
  | Capacity_change of { link : Graph.link_id; cap : float }

let kind = function
  | Join _ -> "join"
  | Leave _ -> "leave"
  | Rho_change _ -> "rho"
  | Capacity_change _ -> "cap"

let pp fmt = function
  | Join { session; node; weight = None } -> Format.fprintf fmt "join S%d @%d" (session + 1) node
  | Join { session; node; weight = Some w } ->
      Format.fprintf fmt "join S%d @%d w=%g" (session + 1) node w
  | Leave { session; node } -> Format.fprintf fmt "leave S%d @%d" (session + 1) node
  | Rho_change { session; rho } -> Format.fprintf fmt "rho S%d %g" (session + 1) rho
  | Capacity_change { link; cap } -> Format.fprintf fmt "cap l%d %g" link cap
