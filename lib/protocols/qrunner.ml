module Graph = Mmfair_topology.Graph
module Routing = Mmfair_topology.Routing
module Engine = Mmfair_sim.Engine
module Qlink = Mmfair_sim.Qlink
module Scheme = Mmfair_layering.Scheme
module Xoshiro = Mmfair_prng.Xoshiro

type traffic =
  | Layered
  | Aimd of { alpha : float; min_rate : float; initial_rate : float }

type membership_mode =
  | Ideal
  | Igmp of { leave_timeout : float; join_hop_delay : float }

type config = {
  kind : Protocol.kind;
  layers : int;
  unit_rate : float;
  duration : float;
  warmup : float;
  buffer : int;
  link_delay : float;
  marking : Qlink.marking;
  membership : membership_mode;
  seed : int64;
}

let config ?(layers = 6) ?(unit_rate = 8.0) ?(duration = 120.0) ?(warmup = 30.0) ?(buffer = 16)
    ?(link_delay = 0.001) ?(marking = Qlink.No_marking) ?(membership = Ideal) ?(seed = 42L) kind =
  if layers < 1 then invalid_arg "Qrunner.config: need at least one layer";
  if not (unit_rate > 0.0) then invalid_arg "Qrunner.config: unit rate must be positive";
  if not (duration > warmup) || warmup < 0.0 then invalid_arg "Qrunner.config: bad duration/warmup";
  (match membership with
  | Ideal -> ()
  | Igmp { leave_timeout; join_hop_delay } ->
      if leave_timeout < 0.0 || join_hop_delay < 0.0 then
        invalid_arg "Qrunner.config: negative membership latency");
  { kind; layers; unit_rate; duration; warmup; buffer; link_delay; marking; membership; seed }

type session_spec = {
  sender : Graph.node;
  receivers : Graph.node array;
  traffic : traffic;
}

let layered ~sender ~receivers = { sender; receivers; traffic = Layered }

let aimd ?(alpha = 4.0) ?(min_rate = 1.0) ?(initial_rate = 8.0) ~sender ~receiver () =
  if not (alpha > 0.0 && min_rate > 0.0 && initial_rate >= min_rate) then
    invalid_arg "Qrunner.aimd: bad parameters";
  { sender; receivers = [| receiver |]; traffic = Aimd { alpha; min_rate; initial_rate } }

type session_result = {
  goodput : float array;
  mean_level : float array;
  sustainable : float array;
  link_rates : float array;
      (* packets entering each link per second during measurement *)
}

type multi_result = {
  sessions : session_result array;
  total_drops : (Graph.link_id * int) list;
  total_marks : int;
  link_utilization : (Graph.link_id * float) list;
}

(* AIMD sender state: rate-based additive increase (once per RTT when
   no congestion was reported in that RTT), multiplicative decrease on
   a congestion report (at most one decrease per RTT). *)
type aimd_state = {
  alpha : float;
  min_rate : float;
  mutable rate : float;
  rtt : float;
  mutable last_decrease : float;
  mutable congested_since_tick : bool;
}

type proto_state =
  | Layered_state of {
      states : Protocol.receiver array;
      psender : Protocol.sender;
      schedule : Layer_schedule.t;
      sched_rng : Xoshiro.t;
    }
  | Aimd_state of aimd_state

(* per-session routed tree and protocol state *)
type session_state = {
  spec : session_spec;
  paths : Graph.link_id array array;
  children : (Graph.link_id * Graph.node) list array;
  downstream : int list array;
  receivers_at : int list array;
  proto : proto_state;
  membership : Mmfair_sim.Membership.t option;
  layer_seq : int array;
  next_seq : int array array;
  received : int array;
  level_integral : float array;
  last_level_update : float array;
  link_entered : int array;
}

type event =
  | Send of int
  | Aimd_tick of int
  | Congestion_report of int  (* reaches the AIMD sender after ~RTT/2 *)
  | Arrive of { session : int; node : Graph.node; layer : int; seq : int;
                signal : int option; marked : bool }

let build_session cfg graph root spec =
  let n = Array.length spec.receivers in
  if n = 0 then invalid_arg "Qrunner: session needs at least one receiver";
  (match spec.traffic with
  | Aimd _ when n <> 1 -> invalid_arg "Qrunner: AIMD sessions have exactly one receiver"
  | _ -> ());
  let m = cfg.layers in
  let from_sender = Routing.paths_from graph spec.sender in
  let paths =
    Array.mapi
      (fun k r ->
        match from_sender.(r) with
        | Some p -> Array.of_list p
        | None -> invalid_arg (Printf.sprintf "Qrunner: receiver %d unreachable" k))
      spec.receivers
  in
  let node_count = Graph.node_count graph in
  let children = Array.make node_count [] in
  let downstream = Array.make (Graph.link_count graph) [] in
  let seen_edge = Hashtbl.create 64 in
  Array.iteri
    (fun k path ->
      let v = ref spec.sender in
      Array.iter
        (fun l ->
          let w = Graph.other_end graph l !v in
          if not (Hashtbl.mem seen_edge l) then begin
            Hashtbl.add seen_edge l ();
            children.(!v) <- children.(!v) @ [ (l, w) ]
          end;
          downstream.(l) <- k :: downstream.(l);
          v := w)
        path)
    paths;
  let receivers_at = Array.make node_count [] in
  Array.iteri (fun k r -> receivers_at.(r) <- k :: receivers_at.(r)) spec.receivers;
  let proto =
    match spec.traffic with
    | Layered ->
        Layered_state
          {
            states =
              Array.init n (fun _ -> Protocol.receiver cfg.kind ~layers:m ~rng:(Xoshiro.split root));
            psender = Protocol.sender cfg.kind ~layers:m;
            schedule = Layer_schedule.create (Scheme.exponential ~layers:m);
            sched_rng = Xoshiro.split root;
          }
    | Aimd { alpha; min_rate; initial_rate } ->
        let hops = Array.length paths.(0) in
        Aimd_state
          {
            alpha;
            min_rate;
            rate = initial_rate;
            rtt = Stdlib.max 0.005 (2.0 *. float_of_int hops *. cfg.link_delay);
            last_decrease = neg_infinity;
            congested_since_tick = false;
          }
  in
  let membership =
    match (cfg.membership, spec.traffic) with
    | Ideal, _ | _, Aimd _ -> None
    | Igmp { leave_timeout; join_hop_delay }, Layered ->
        let mem =
          Mmfair_sim.Membership.create ~links:(Graph.link_count graph) ~layers:m ~leave_timeout
            ~join_hop_delay
        in
        (* every receiver starts joined to layer 1, pre-propagated *)
        Array.iter
          (fun path -> Mmfair_sim.Membership.join mem ~now:(-1000.0) ~path ~layer:1)
          paths;
        Some mem
  in
  {
    spec;
    paths;
    children;
    downstream;
    receivers_at;
    proto;
    membership;
    layer_seq = Array.make m 0;
    next_seq = Array.make_matrix n m (-1);
    received = Array.make n 0;
    level_integral = Array.make n 0.0;
    last_level_update = Array.make n cfg.warmup;
    link_entered = Array.make (Graph.link_count graph) 0;
  }

let run_multi cfg ~graph ~sessions =
  if Array.length sessions = 0 then invalid_arg "Qrunner.run_multi: need at least one session";
  let m = cfg.layers in
  let root = Xoshiro.create ~seed:cfg.seed () in
  let mark_rng = Xoshiro.split root in
  let ss = Array.map (build_session cfg graph root) sessions in
  let qlinks =
    Array.init (Graph.link_count graph) (fun l ->
        Qlink.create ~capacity:(Graph.capacity graph l) ~delay:cfg.link_delay ~buffer:cfg.buffer
          ~marking:cfg.marking ~rng:(Xoshiro.split mark_rng) ())
  in
  let engine = Engine.create () in
  let scheme = Scheme.exponential ~layers:m in
  let aggregate = Scheme.top_rate scheme *. cfg.unit_rate in
  let layered_interval = 1.0 /. aggregate in
  let update_level_integral s k now level =
    if now > cfg.warmup then begin
      let from = Stdlib.max s.last_level_update.(k) cfg.warmup in
      s.level_integral.(k) <- s.level_integral.(k) +. (float_of_int level *. (now -. from))
    end;
    s.last_level_update.(k) <- now
  in
  let desync s k ~from_layer ~to_layer =
    for l = from_layer to to_layer do
      if l >= 1 && l <= m then s.next_seq.(k).(l - 1) <- -1
    done
  in
  let subscribed s k ~layer =
    match s.proto with
    | Layered_state ls -> Protocol.subscribed ls.states.(k) ~layer
    | Aimd_state _ -> layer = 1
  in
  let forward now si ~node ~layer ~seq ~signal ~marked =
    let s = ss.(si) in
    List.iter
      (fun (l, w) ->
        let wanted =
          match s.membership with
          | Some mem -> Mmfair_sim.Membership.flowing mem ~now ~link:l ~layer
          | None -> List.exists (fun k -> subscribed s k ~layer) s.downstream.(l)
        in
        if wanted then begin
          if now > cfg.warmup then s.link_entered.(l) <- s.link_entered.(l) + 1;
          match Qlink.offer qlinks.(l) ~now with
          | Qlink.Accepted { delivery; marked = mark_here } ->
              Engine.schedule_at engine ~time:delivery
                (Arrive { session = si; node = w; layer; seq; signal; marked = marked || mark_here })
          | Qlink.Dropped -> ()
        end)
      s.children.(node)
  in
  let membership_transition s k ~before ~after now =
    match s.membership with
    | None -> ()
    | Some mem ->
        let path = s.paths.(k) in
        if after > before then
          for layer = before + 1 to after do
            Mmfair_sim.Membership.join mem ~now ~path ~layer
          done
        else
          for layer = after + 1 to before do
            Mmfair_sim.Membership.leave mem ~now ~path ~layer
          done
  in
  let aimd_congestion now si =
    (* the receiver reports congestion; the report reaches the sender
       after ~RTT/2 *)
    let s = ss.(si) in
    match s.proto with
    | Aimd_state st -> Engine.schedule_at engine ~time:(now +. (st.rtt /. 2.0)) (Congestion_report si)
    | Layered_state _ -> ()
  in
  let deliver now si k ~layer ~seq ~signal ~marked =
    let s = ss.(si) in
    match s.proto with
    | Aimd_state _ ->
        let expected = s.next_seq.(k).(0) in
        if expected >= 0 && seq > expected then aimd_congestion now si;
        s.next_seq.(k).(0) <- seq + 1;
        if now > cfg.warmup then s.received.(k) <- s.received.(k) + 1;
        if marked then aimd_congestion now si
    | Layered_state ls ->
        if Protocol.subscribed ls.states.(k) ~layer then begin
          let expected = s.next_seq.(k).(layer - 1) in
          let before = Protocol.level ls.states.(k) in
          if expected >= 0 && seq > expected then Protocol.on_congestion ls.states.(k);
          if Protocol.subscribed ls.states.(k) ~layer then begin
            s.next_seq.(k).(layer - 1) <- seq + 1;
            if now > cfg.warmup then s.received.(k) <- s.received.(k) + 1;
            if marked then Protocol.on_congestion ls.states.(k)
            else Protocol.on_received ls.states.(k) ~signal
          end;
          let after = Protocol.level ls.states.(k) in
          if after <> before then begin
            update_level_integral s k now before;
            membership_transition s k ~before ~after now;
            if after > before then desync s k ~from_layer:(before + 1) ~to_layer:after
            else desync s k ~from_layer:(after + 1) ~to_layer:before
          end
        end
  in
  let handler now = function
    | Send si ->
        let s = ss.(si) in
        let layer, signal, next_at =
          match s.proto with
          | Layered_state ls ->
              let layer = Layer_schedule.next ls.schedule ~rng:ls.sched_rng in
              (layer, Protocol.on_send ls.psender ~layer, now +. layered_interval)
          | Aimd_state st -> (1, None, now +. (1.0 /. st.rate))
        in
        let seq = s.layer_seq.(layer - 1) in
        s.layer_seq.(layer - 1) <- seq + 1;
        List.iter (fun k -> deliver now si k ~layer ~seq ~signal ~marked:false) s.receivers_at.(s.spec.sender);
        forward now si ~node:s.spec.sender ~layer ~seq ~signal ~marked:false;
        if next_at <= cfg.duration then Engine.schedule_at engine ~time:next_at (Send si);
        Engine.Continue
    | Aimd_tick si ->
        (match ss.(si).proto with
        | Aimd_state st ->
            if not st.congested_since_tick then st.rate <- st.rate +. st.alpha;
            st.congested_since_tick <- false;
            if now +. st.rtt <= cfg.duration then
              Engine.schedule_at engine ~time:(now +. st.rtt) (Aimd_tick si)
        | Layered_state _ -> ());
        Engine.Continue
    | Congestion_report si ->
        (match ss.(si).proto with
        | Aimd_state st ->
            if now -. st.last_decrease >= st.rtt then begin
              st.rate <- Stdlib.max st.min_rate (st.rate /. 2.0);
              st.last_decrease <- now;
              st.congested_since_tick <- true
            end
        | Layered_state _ -> ());
        Engine.Continue
    | Arrive { session = si; node; layer; seq; signal; marked } ->
        List.iter (fun k -> deliver now si k ~layer ~seq ~signal ~marked) ss.(si).receivers_at.(node);
        forward now si ~node ~layer ~seq ~signal ~marked;
        Engine.Continue
  in
  Array.iteri
    (fun si s ->
      let offset = layered_interval *. float_of_int si /. float_of_int (Array.length ss) in
      Engine.schedule_at engine ~time:offset (Send si);
      match s.proto with
      | Aimd_state st -> Engine.schedule_at engine ~time:(offset +. st.rtt) (Aimd_tick si)
      | Layered_state _ -> ())
    ss;
  Engine.run engine ~until:cfg.duration ~handler;
  let window = cfg.duration -. cfg.warmup in
  let session_results =
    Array.map
      (fun s ->
        (match s.proto with
        | Layered_state ls ->
            Array.iteri (fun k st -> update_level_integral s k cfg.duration (Protocol.level st)) ls.states
        | Aimd_state _ ->
            Array.iteri (fun k _ -> update_level_integral s k cfg.duration 1) s.received);
        let sustainable =
          Array.map
            (fun path ->
              let bottleneck =
                Array.fold_left (fun acc l -> Stdlib.min acc (Graph.capacity graph l)) infinity path
              in
              match s.spec.traffic with
              | Aimd _ -> bottleneck
              | Layered ->
                  let level = Scheme.level_for_rate scheme (bottleneck /. cfg.unit_rate) in
                  Scheme.cumulative scheme level *. cfg.unit_rate)
            s.paths
        in
        {
          goodput = Array.map (fun c -> float_of_int c /. window) s.received;
          mean_level = Array.map (fun integral -> integral /. window) s.level_integral;
          sustainable;
          link_rates = Array.map (fun c -> float_of_int c /. window) s.link_entered;
        })
      ss
  in
  {
    sessions = session_results;
    total_drops = List.init (Array.length qlinks) (fun l -> (l, Qlink.dropped qlinks.(l)));
    total_marks = Array.fold_left (fun acc q -> acc + Qlink.marked q) 0 qlinks;
    link_utilization =
      List.init (Array.length qlinks) (fun l -> (l, Qlink.utilization qlinks.(l) ~now:cfg.duration));
  }

type result = {
  goodput : float array;
  mean_level : float array;
  sustainable : float array;
  drops : (Graph.link_id * int) list;
  marks : int;
  utilization : (Graph.link_id * float) list;
}

let run cfg ~graph ~sender ~receivers =
  let r = run_multi cfg ~graph ~sessions:[| layered ~sender ~receivers |] in
  let s = r.sessions.(0) in
  {
    goodput = s.goodput;
    mean_level = s.mean_level;
    sustainable = s.sustainable;
    drops = r.total_drops;
    marks = r.total_marks;
    utilization = r.link_utilization;
  }

let run_star cfg ~shared_capacity ~fanout_capacities =
  let star = Mmfair_topology.Builders.modified_star ~shared_capacity ~fanout_capacities in
  run cfg ~graph:star.Mmfair_topology.Builders.graph ~sender:star.Mmfair_topology.Builders.sender
    ~receivers:star.Mmfair_topology.Builders.receivers
