(** The three layered congestion-control protocols of Section 4.

    All three share the same congestion reaction — on a congestion
    event (a lost packet on a subscribed layer) the receiver leaves
    its highest layer (never below layer 1) — and the same join
    pacing: starting from a join/leave event at level [i], the
    expected number of {e received} packets before joining layer
    [i+1] is [2^(2(i−1))] (the paper's choice, after [Vicisano et
    al.]).  They differ in who decides the join instant:

    - {e Uncoordinated}: each received packet triggers a join with
      probability [1/2^(2(i−1))] — independent across receivers.
    - {e Deterministic}: a receiver joins after exactly [2^(2(i−1))]
      consecutively received packets since its last join/leave event —
      no randomness, but no resynchronization either.
    - {e Coordinated}: the sender embeds a join-level field in
      layer-1 packets; a signal at level [s] tells every receiver at
      level [i ≤ s] to join layer [i+1] (the nested signalling the
      paper describes), so receivers that see the same packets join in
      lockstep. *)

type kind = Uncoordinated | Deterministic | Coordinated

val kind_name : kind -> string
val all_kinds : kind list

val join_period : int -> int
(** [join_period i = 2^(2(i−1))] — expected received packets between a
    level-[i] receiver's join/leave event and its join to [i+1].
    Raises [Invalid_argument] for [i < 1]. *)

type receiver
(** Per-receiver protocol state. *)

val receiver : kind -> layers:int -> rng:Mmfair_prng.Xoshiro.t -> receiver
(** A fresh receiver joined to layer 1 only.  The [rng] drives
    Uncoordinated joins (each receiver should get its own split
    stream). *)

val level : receiver -> int
(** Currently joined level in [[1, layers]]. *)

val set_level : receiver -> int -> unit
(** Force a level (used to start experiments in steady state). *)

val subscribed : receiver -> layer:int -> bool
(** Whether the receiver is joined to the given layer
    ([layer ≤ level]). *)

val on_received : receiver -> signal:int option -> unit
(** The receiver got a packet on a subscribed layer; [signal] is the
    Coordinated join-level field (on layer-1 packets), [None]
    otherwise or for other protocols.  May raise the level by one. *)

val on_congestion : receiver -> unit
(** The receiver observed a loss on a subscribed layer: leave the top
    layer (if above 1) and reset the join pacing. *)

val joins : receiver -> int
(** Total join events so far. *)

val leaves : receiver -> int
(** Total leave (congestion-reaction) events so far. *)

type sender
(** Coordinated-sender signalling state; inert for the other kinds. *)

val sender : kind -> layers:int -> sender

val on_send : sender -> layer:int -> int option
(** Called for every transmitted packet with its layer; returns the
    join-level signal to embed, if any.  Signals ride only on layer-1
    packets (every receiver is subscribed to layer 1, so every
    receiver that gets the packet sees the field).  Returns [Some s]
    when receivers at levels [≤ s] should join one more layer. *)
