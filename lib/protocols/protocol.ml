module Xoshiro = Mmfair_prng.Xoshiro

type kind = Uncoordinated | Deterministic | Coordinated

let kind_name = function
  | Uncoordinated -> "Uncoordinated"
  | Deterministic -> "Deterministic"
  | Coordinated -> "Coordinated"

let all_kinds = [ Uncoordinated; Deterministic; Coordinated ]

let join_period i =
  if i < 1 then invalid_arg "Protocol.join_period: level must be >= 1";
  1 lsl (2 * (i - 1))

type receiver = {
  kind : kind;
  layers : int;
  rng : Xoshiro.t;
  mutable level : int;
  mutable since_event : int;
  mutable join_count : int;
  mutable leave_count : int;
}

let receiver kind ~layers ~rng =
  if layers < 1 then invalid_arg "Protocol.receiver: need at least one layer";
  { kind; layers; rng; level = 1; since_event = 0; join_count = 0; leave_count = 0 }

let level r = r.level

let set_level r l =
  if l < 1 || l > r.layers then invalid_arg "Protocol.set_level: level out of range";
  r.level <- l;
  r.since_event <- 0

let subscribed r ~layer = layer >= 1 && layer <= r.level

let join r =
  r.level <- r.level + 1;
  r.since_event <- 0;
  r.join_count <- r.join_count + 1

let on_received r ~signal =
  r.since_event <- r.since_event + 1;
  if r.level < r.layers then begin
    match r.kind with
    | Uncoordinated ->
        if Xoshiro.float r.rng < 1.0 /. float_of_int (join_period r.level) then join r
    | Deterministic -> if r.since_event >= join_period r.level then join r
    | Coordinated -> (
        match signal with Some s when s >= r.level -> join r | _ -> ())
  end

let on_congestion r =
  if r.level > 1 then begin
    r.level <- r.level - 1;
    r.leave_count <- r.leave_count + 1
  end;
  r.since_event <- 0

let joins r = r.join_count
let leaves r = r.leave_count

type sender = { s_kind : kind; s_layers : int; counters : int array }

let sender kind ~layers =
  if layers < 1 then invalid_arg "Protocol.sender: need at least one layer";
  { s_kind = kind; s_layers = layers; counters = Array.make (Stdlib.max 0 (layers - 1)) 0 }

let on_send s ~layer =
  if layer < 1 || layer > s.s_layers then invalid_arg "Protocol.on_send: layer out of range";
  match s.s_kind with
  | Uncoordinated | Deterministic -> None
  | Coordinated ->
      (* counters.(i-1) counts packets sent on layers <= i, i.e. the
         packets a level-i receiver would receive. *)
      for i = layer to s.s_layers - 1 do
        s.counters.(i - 1) <- s.counters.(i - 1) + 1
      done;
      if layer <> 1 then None
      else begin
        let signal = ref 0 in
        for i = s.s_layers - 1 downto 1 do
          if !signal = 0 && s.counters.(i - 1) >= join_period i then signal := i
        done;
        if !signal = 0 then None
        else begin
          (* Nested joins: every level <= signal joins, so all their
             pacing counters restart. *)
          for i = 1 to !signal do
            s.counters.(i - 1) <- 0
          done;
          Some !signal
        end
      end
