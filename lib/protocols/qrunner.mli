(** Closed-loop protocol runs over capacitated, finite-buffer links.

    The Figure-8 runner ({!Runner}) follows the paper's model: loss is
    an exogenous Bernoulli process and links are infinitely fast.
    This runner closes the loop: links have real capacities
    (packets/second), store-and-forward queues and drop-tail buffers
    ({!Mmfair_sim.Qlink}); loss happens only by queue overflow, and —
    when a marking policy is configured — congestion is signalled
    before any loss occurs (the paper explicitly lists "a bit set
    within a packet by the network" as a congestion event).  Receivers
    detect drops the way real protocols do, via per-layer
    sequence-number gaps, and join/leave latency is emergent.

    Sessions sharing the links may be layered multicast (the paper's
    Section-4 protocols) or AIMD unicast flows — rate-halving,
    additive-increase senders standing in for TCP — so both
    inter-session fairness and TCP-friendliness are observable in one
    simulation. *)

type traffic =
  | Layered
      (** A layered multicast session driven by the [config]'s
          Section-4 protocol. *)
  | Aimd of { alpha : float; min_rate : float; initial_rate : float }
      (** A TCP-like unicast flow: the sender transmits at a rate that
          increases by [alpha] packets/second once per RTT while no
          congestion is reported, and halves (not below [min_rate])
          when the receiver reports a loss or a mark.  Exactly one
          receiver. *)

type membership_mode =
  | Ideal
      (** Joins and leaves take effect instantly on every link — the
          paper's Sections-3/4 model. *)
  | Igmp of { leave_timeout : float; join_hop_delay : float }
      (** Real group membership ({!Mmfair_sim.Membership}): joins
          propagate hop by hop toward the source, and a link keeps
          forwarding a left layer until the leave timeout expires —
          both latencies the paper's Section 5 flags as redundancy
          sources become emergent. *)

type config = {
  kind : Protocol.kind;
  layers : int;
  unit_rate : float;
      (** Layer-1 rate in packets/second; layer [i ≥ 2] carries
          [2^(i−2)·unit_rate], so the aggregate is
          [2^(layers−1)·unit_rate]. *)
  duration : float;   (** Simulated seconds. *)
  warmup : float;     (** Seconds excluded from measurement. *)
  buffer : int;       (** Per-link queue limit (packets). *)
  link_delay : float; (** Per-link propagation delay (seconds). *)
  marking : Mmfair_sim.Qlink.marking;
      (** Congestion marking policy applied at every link.  A marked
          packet delivered on a subscribed layer (or to an AIMD
          receiver) triggers a congestion event but still counts as
          goodput.  Default {!Mmfair_sim.Qlink.No_marking} (pure
          drop-tail). *)
  membership : membership_mode;  (** Default {!Ideal}. *)
  seed : int64;
}

val config :
  ?layers:int -> ?unit_rate:float -> ?duration:float -> ?warmup:float ->
  ?buffer:int -> ?link_delay:float -> ?marking:Mmfair_sim.Qlink.marking ->
  ?membership:membership_mode -> ?seed:int64 ->
  Protocol.kind -> config
(** Defaults: 6 layers, unit rate 8 pkt/s, 120 s with 30 s warmup,
    buffer 16, delay 1 ms, no marking, ideal membership. *)

type session_spec = {
  sender : Mmfair_topology.Graph.node;
  receivers : Mmfair_topology.Graph.node array;
  traffic : traffic;
}

val layered : sender:Mmfair_topology.Graph.node -> receivers:Mmfair_topology.Graph.node array -> session_spec

val aimd :
  ?alpha:float -> ?min_rate:float -> ?initial_rate:float ->
  sender:Mmfair_topology.Graph.node -> receiver:Mmfair_topology.Graph.node -> unit -> session_spec
(** Defaults: [alpha = 4.0] pkt/s per RTT, [min_rate = 1.0],
    [initial_rate = 8.0]. *)

type session_result = {
  goodput : float array;       (** Per-receiver received packets/second over the measurement window. *)
  mean_level : float array;    (** Per-receiver time-average joined level (1 for AIMD flows). *)
  sustainable : float array;
      (** Per-receiver largest cumulative layer rate its whole path
          could carry if it were alone (for AIMD flows: the raw path
          bottleneck). *)
  link_rates : float array;
      (** Packets this session pushed into each link per second during
          the measurement window — the closed-loop [u_{i,j}], so
          Definition-3 redundancy on link [l] is
          [link_rates.(l) /. max goodput] over the receivers behind
          [l]. *)
}

type multi_result = {
  sessions : session_result array;
  total_drops : (Mmfair_topology.Graph.link_id * int) list;  (** Overflow drops per link. *)
  total_marks : int;                                         (** Marks applied (0 without marking). *)
  link_utilization : (Mmfair_topology.Graph.link_id * float) list;
}

val run_multi :
  config ->
  graph:Mmfair_topology.Graph.t ->
  sessions:session_spec array ->
  multi_result
(** Run any number of sessions concurrently.  Layered sessions all use
    the [config]'s protocol and layering, each with its own sender
    state, sequence spaces and receiver machines; AIMD sessions use
    their own parameters.  Sender start times are staggered by a
    fraction of the send interval to avoid artificial phase lock.
    Raises [Invalid_argument] on an empty session list, an unreachable
    receiver, or an AIMD session with more than one receiver. *)

type result = {
  goodput : float array;
  mean_level : float array;
  sustainable : float array;
  drops : (Mmfair_topology.Graph.link_id * int) list;
  marks : int;
  utilization : (Mmfair_topology.Graph.link_id * float) list;
}
(** Single-session view of {!multi_result}. *)

val run :
  config ->
  graph:Mmfair_topology.Graph.t ->
  sender:Mmfair_topology.Graph.node ->
  receivers:Mmfair_topology.Graph.node array ->
  result
(** Single layered session convenience over {!run_multi}. *)

val run_star :
  config -> shared_capacity:float -> fanout_capacities:float array -> result
(** Convenience: the modified-star topology with the given capacities
    (packets/second), one layered session. *)
