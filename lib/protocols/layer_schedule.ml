module Scheme = Mmfair_layering.Scheme
module Xoshiro = Mmfair_prng.Xoshiro

type mode = Wrr | Random

type t = {
  mode : mode;
  rates : float array; (* rates.(l-1) = rate of layer l *)
  total : float;
  credits : float array;
}

let create ?(mode = Wrr) scheme =
  let m = Scheme.layers scheme in
  let rates = Array.init m (fun i -> Scheme.layer_rate scheme (i + 1)) in
  { mode; rates; total = Scheme.top_rate scheme; credits = Array.make m 0.0 }

let mode t = t.mode
let layers t = Array.length t.rates

let next t ~rng =
  match t.mode with
  | Random ->
      let x = Xoshiro.uniform rng 0.0 t.total in
      let rec find l acc =
        if l = Array.length t.rates - 1 then l
        else begin
          let acc = acc +. t.rates.(l) in
          if x < acc then l else find (l + 1) acc
        end
      in
      find 0 0.0 + 1
  | Wrr ->
      (* Smooth WRR: add each layer's rate to its credit, emit the
         layer with the largest credit, charge it the total rate. *)
      let best = ref 0 in
      Array.iteri
        (fun i r ->
          t.credits.(i) <- t.credits.(i) +. r;
          if t.credits.(i) > t.credits.(!best) then best := i)
        t.rates;
      t.credits.(!best) <- t.credits.(!best) -. t.total;
      !best + 1

let share t l =
  if l < 1 || l > Array.length t.rates then invalid_arg "Layer_schedule.share: layer out of range";
  t.rates.(l - 1) /. t.total

let reset t = Array.fill t.credits 0 (Array.length t.credits) 0.0
