(** Packet-level protocol experiments — the engine behind Figure 8.

    Runs one layered session over a multicast tree with Bernoulli
    per-link loss and one of the Section-4 protocols, and measures the
    session's redundancy (Definition 3) on a designated link: the
    long-run bandwidth the session consumed there divided by the
    largest long-run receiving rate among the receivers downstream of
    it.  All rates are in packets per slot (the sender emits exactly
    one packet per slot). *)

type config = {
  kind : Protocol.kind;
  layers : int;            (** The paper uses 8 for Figure 8. *)
  packets : int;           (** Slots to simulate; the paper uses 100,000. *)
  warmup : int;            (** Initial slots excluded from measurement. *)
  schedule_mode : Layer_schedule.mode;  (** [Wrr] (default realistic) or [Random] (Markov-comparable). *)
  seed : int64;
  leave_latency : int;
      (** Slots a left layer keeps flowing on the receiver's path
          before the prune takes effect (IGMP-style leave latency).
          The paper (Section 5) predicts long leave latencies increase
          redundancy: the link still carries the data while the
          receiver's rate has already dropped.  Default 0 (the ideal
          zero-latency model of Sections 3–4). *)
  priority_drop : bool;
      (** When set, loss discriminates by layer — a layer-[L] packet's
          drop probability is scaled by [2(L−1)/(M−1)] (mean 1 across
          layers), so the base layers are protected, as with the
          priority-dropping schemes of Bajaj et al. that Section 5
          asks about.  Default false (uniform dropping). *)
}

val config :
  ?layers:int -> ?packets:int -> ?warmup:int ->
  ?schedule_mode:Layer_schedule.mode -> ?seed:int64 ->
  ?leave_latency:int -> ?priority_drop:bool ->
  Protocol.kind -> config
(** Defaults: 8 layers, 100_000 packets, 2_000 warmup, [Wrr],
    seed [42L], zero leave latency, uniform dropping. *)

type result = {
  redundancy : float;
      (** Session redundancy on the measured link over the
          measurement window. *)
  link_rate : float;
      (** Packets entering the measured link per slot. *)
  receiver_rates : float array;
      (** Per-receiver received packets per slot. *)
  mean_level : float;
      (** Receiver level averaged over receivers and slots. *)
  total_joins : int;
  total_leaves : int;
}

val run_tree :
  ?observer:(slot:int -> levels:int array -> unit) ->
  config ->
  graph:Mmfair_topology.Graph.t ->
  sender:Mmfair_topology.Graph.node ->
  receivers:Mmfair_topology.Graph.node array ->
  loss_rate:(Mmfair_topology.Graph.link_id -> float) ->
  measured_link:Mmfair_topology.Graph.link_id ->
  result
(** Run over an arbitrary routed tree.  Raises [Invalid_argument] on
    an unreachable receiver, a bad loss rate, or a measured link not
    on the session's data-path.  The optional [observer] is invoked
    after every slot with each receiver's current joined level; it
    feeds the convergence/transient experiments without perturbing the
    run. *)

val run_star :
  config ->
  receivers:int ->
  shared_loss:float ->
  independent_loss:float ->
  result
(** The paper's Figure-7(b) modified star: [receivers] fanout links
    each with loss [independent_loss], one shared sender-side link
    with loss [shared_loss]; redundancy measured on the shared link. *)

val run_fixed_star :
  config ->
  receivers:int ->
  level:int ->
  shared_loss:float ->
  independent_loss:float ->
  result
(** Baseline without any join/leave dynamics: every receiver stays
    joined up to [level] forever (what a network-assisted/active-node
    scheme could sustain, per Section 5).  Its redundancy is exactly
    the loss floor [1/((1−p_s)(1−p_i))] — the lower bound the adaptive
    protocols are compared against.  The [kind] field of [config] is
    ignored. *)

val replicate :
  ?domains:int ->
  runs:int ->
  (int64 -> result) ->
  seed:int64 ->
  Mmfair_stats.Ci.interval
(** [replicate ~runs f ~seed] calls [f] with [runs] seeds derived
    deterministically from [seed] and returns the 95% confidence
    interval of the redundancy — the statistic the paper reports (mean
    of 30 runs).  With [domains > 1] the runs execute on the
    process-wide domain pool of that size
    ({!Mmfair_core.Domain_pool.shared} — workers are spawned once and
    reused across sweeps); results are identical to the serial order
    (each run is self-contained and seeded, and runs map to slots by
    static chunking), so parallelism is purely a wall-clock
    optimization for paper-scale sweeps. *)
