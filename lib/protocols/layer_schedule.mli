(** Sender-side layer scheduling.

    The sender transmits one packet per slot; the schedule decides
    which layer each slot's packet belongs to, honoring the scheme's
    layer rates.  Two modes:

    - [Wrr]: smooth weighted round-robin — deterministic, with each
      layer's long-run share exactly proportional to its rate.  This
      is how a real layered sender interleaves groups.
    - [Random]: i.i.d. layer choice with probability proportional to
      rate — memoryless, matching the Markov-chain analysis model so
      simulation and analysis can be compared exactly. *)

type mode = Wrr | Random

type t

val create : ?mode:mode -> Mmfair_layering.Scheme.t -> t
(** Default mode is [Wrr]. *)

val mode : t -> mode

val layers : t -> int

val next : t -> rng:Mmfair_prng.Xoshiro.t -> int
(** The next slot's layer, in [[1, layers]].  The [rng] is consulted
    only in [Random] mode. *)

val share : t -> int -> float
(** [share t l] is layer [l]'s long-run fraction of slots,
    [layer_rate l / top_rate]. *)

val reset : t -> unit
(** Restart the WRR credit state (no effect in [Random] mode). *)
