module Graph = Mmfair_topology.Graph
module Xoshiro = Mmfair_prng.Xoshiro
module Scheme = Mmfair_layering.Scheme
module Mcast_tree = Mmfair_sim.Mcast_tree
module Loss_model = Mmfair_sim.Loss_model

type config = {
  kind : Protocol.kind;
  layers : int;
  packets : int;
  warmup : int;
  schedule_mode : Layer_schedule.mode;
  seed : int64;
  leave_latency : int;
  priority_drop : bool;
}

let config ?(layers = 8) ?(packets = 100_000) ?(warmup = 2_000) ?(schedule_mode = Layer_schedule.Wrr)
    ?(seed = 42L) ?(leave_latency = 0) ?(priority_drop = false) kind =
  if layers < 1 then invalid_arg "Runner.config: need at least one layer";
  if packets < 1 then invalid_arg "Runner.config: need at least one packet";
  if warmup < 0 || warmup >= packets then invalid_arg "Runner.config: warmup out of range";
  if leave_latency < 0 then invalid_arg "Runner.config: negative leave latency";
  { kind; layers; packets; warmup; schedule_mode; seed; leave_latency; priority_drop }

type result = {
  redundancy : float;
  link_rate : float;
  receiver_rates : float array;
  mean_level : float;
  total_joins : int;
  total_leaves : int;
}

let run_tree ?observer cfg ~graph ~sender ~receivers ~loss_rate ~measured_link =
  let tree = Mcast_tree.make graph ~sender ~receivers in
  if not (List.mem measured_link (Mcast_tree.links tree)) then
    invalid_arg "Runner.run_tree: measured link is not on the session's data-path";
  let root = Xoshiro.create ~seed:cfg.seed () in
  let loss = Loss_model.create ~rng:root ~links:(Graph.link_count graph) ~loss_rate in
  let sched_rng = Xoshiro.split root in
  let scheme = Scheme.exponential ~layers:cfg.layers in
  let schedule = Layer_schedule.create ~mode:cfg.schedule_mode scheme in
  let n = Array.length receivers in
  let states =
    Array.init n (fun _ -> Protocol.receiver cfg.kind ~layers:cfg.layers ~rng:(Xoshiro.split root))
  in
  let psender = Protocol.sender cfg.kind ~layers:cfg.layers in
  let received = Array.make n 0 in
  let link_entered = ref 0 in
  let level_sum = ref 0 in
  (* Leave latency: a pruned layer keeps flowing on the receiver's
     branch until the prune takes effect, so link accounting follows
     the lingering level while reception follows the current one. *)
  let linger_level = Array.make n 0 in
  let linger_until = Array.make n 0 in
  let measured_slots = cfg.packets - cfg.warmup in
  let priority_scale layer =
    if cfg.layers <= 1 then 1.0
    else 2.0 *. float_of_int (layer - 1) /. float_of_int (cfg.layers - 1)
  in
  for slot = 0 to cfg.packets - 1 do
    let layer = Layer_schedule.next schedule ~rng:sched_rng in
    let signal = Protocol.on_send psender ~layer in
    let wants k = Protocol.subscribed states.(k) ~layer in
    let carries k =
      wants k || (cfg.leave_latency > 0 && slot < linger_until.(k) && layer <= linger_level.(k))
    in
    let drops l =
      if cfg.priority_drop then Loss_model.drops_scaled loss l ~scale:(priority_scale layer)
      else Loss_model.drops loss l
    in
    let delivery = Mcast_tree.deliver tree ~subscribed:carries ~drops in
    let measuring = slot >= cfg.warmup in
    if measuring && List.mem measured_link delivery.Mcast_tree.entered then incr link_entered;
    (* Receivers that got the packet react to content; subscribed
       receivers that did not get it observe a congestion event.
       Packets carried only by a lingering (already left) layer are
       neither received nor loss events. *)
    let got = Array.make n false in
    List.iter (fun k -> got.(k) <- true) delivery.Mcast_tree.received;
    for k = 0 to n - 1 do
      if wants k then begin
        if got.(k) then begin
          if measuring then received.(k) <- received.(k) + 1;
          Protocol.on_received states.(k) ~signal
        end
        else begin
          let before = Protocol.level states.(k) in
          Protocol.on_congestion states.(k);
          if cfg.leave_latency > 0 && Protocol.level states.(k) < before then begin
            linger_level.(k) <- Stdlib.max before (if slot < linger_until.(k) then linger_level.(k) else 0);
            linger_until.(k) <- slot + cfg.leave_latency
          end
        end
      end;
      if measuring then level_sum := !level_sum + Protocol.level states.(k)
    done;
    (match observer with
    | Some f ->
        let levels = Array.map Protocol.level states in
        f ~slot ~levels
    | None -> ())
  done;
  let slots = float_of_int measured_slots in
  let receiver_rates = Array.map (fun c -> float_of_int c /. slots) received in
  let link_rate = float_of_int !link_entered /. slots in
  let peak = Array.fold_left Stdlib.max 0.0 receiver_rates in
  let redundancy = if peak > 0.0 then link_rate /. peak else Float.nan in
  let total_joins = Array.fold_left (fun acc r -> acc + Protocol.joins r) 0 states in
  let total_leaves = Array.fold_left (fun acc r -> acc + Protocol.leaves r) 0 states in
  {
    redundancy;
    link_rate;
    receiver_rates;
    mean_level = float_of_int !level_sum /. (slots *. float_of_int n);
    total_joins;
    total_leaves;
  }

let run_star cfg ~receivers ~shared_loss ~independent_loss =
  if receivers < 1 then invalid_arg "Runner.run_star: need at least one receiver";
  let star =
    Mmfair_topology.Builders.modified_star ~shared_capacity:1e9
      ~fanout_capacities:(Array.make receivers 1e9)
  in
  let shared = star.Mmfair_topology.Builders.shared in
  let loss_rate l = if l = shared then shared_loss else independent_loss in
  run_tree cfg ~graph:star.Mmfair_topology.Builders.graph ~sender:star.Mmfair_topology.Builders.sender
    ~receivers:star.Mmfair_topology.Builders.receivers ~loss_rate ~measured_link:shared

let run_fixed_star cfg ~receivers ~level ~shared_loss ~independent_loss =
  if receivers < 1 then invalid_arg "Runner.run_fixed_star: need at least one receiver";
  if level < 1 || level > cfg.layers then invalid_arg "Runner.run_fixed_star: level out of range";
  let star =
    Mmfair_topology.Builders.modified_star ~shared_capacity:1e9
      ~fanout_capacities:(Array.make receivers 1e9)
  in
  let shared = star.Mmfair_topology.Builders.shared in
  let graph = star.Mmfair_topology.Builders.graph in
  let loss_rate l = if l = shared then shared_loss else independent_loss in
  let tree =
    Mcast_tree.make graph ~sender:star.Mmfair_topology.Builders.sender
      ~receivers:star.Mmfair_topology.Builders.receivers
  in
  let root = Xoshiro.create ~seed:cfg.seed () in
  let loss = Loss_model.create ~rng:root ~links:(Graph.link_count graph) ~loss_rate in
  let sched_rng = Xoshiro.split root in
  let schedule = Layer_schedule.create ~mode:cfg.schedule_mode (Scheme.exponential ~layers:cfg.layers) in
  let received = Array.make receivers 0 in
  let link_entered = ref 0 in
  let measured_slots = cfg.packets - cfg.warmup in
  for slot = 0 to cfg.packets - 1 do
    let layer = Layer_schedule.next schedule ~rng:sched_rng in
    let delivery =
      Mcast_tree.deliver tree
        ~subscribed:(fun _ -> layer <= level)
        ~drops:(fun l -> Loss_model.drops loss l)
    in
    if slot >= cfg.warmup then begin
      if List.mem shared delivery.Mcast_tree.entered then incr link_entered;
      List.iter (fun k -> received.(k) <- received.(k) + 1) delivery.Mcast_tree.received
    end
  done;
  let slots = float_of_int measured_slots in
  let receiver_rates = Array.map (fun c -> float_of_int c /. slots) received in
  let link_rate = float_of_int !link_entered /. slots in
  let peak = Array.fold_left Stdlib.max 0.0 receiver_rates in
  {
    redundancy = (if peak > 0.0 then link_rate /. peak else Float.nan);
    link_rate;
    receiver_rates;
    mean_level = float_of_int level;
    total_joins = 0;
    total_leaves = 0;
  }

let replicate ?(domains = 1) ~runs f ~seed =
  if runs < 2 then invalid_arg "Runner.replicate: need at least two runs";
  if domains < 1 then invalid_arg "Runner.replicate: need at least one domain";
  let sm = Mmfair_prng.Splitmix64.create seed in
  let seeds = Array.init runs (fun _ -> Mmfair_prng.Splitmix64.next sm) in
  let samples =
    if domains = 1 then Array.map (fun s -> (f s).redundancy) seeds
    else begin
      (* The shared pool replaces per-call Domain.spawn: repeated
         sweeps reuse the same workers.  Static chunking keeps each
         run's slot fixed, so results do not depend on scheduling. *)
      let out = Array.make runs 0.0 in
      let chunk = (runs + domains - 1) / domains in
      let task d () =
        let lo = d * chunk in
        let hi = Stdlib.min runs (lo + chunk) in
        for i = lo to hi - 1 do
          out.(i) <- (f seeds.(i)).redundancy
        done
      in
      Mmfair_core.Domain_pool.run
        (Mmfair_core.Domain_pool.shared ~domains)
        (List.init domains task);
      out
    end
  in
  Mmfair_stats.Ci.of_samples samples
