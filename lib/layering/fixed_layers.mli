(** Max-min fairness when receivers are pinned to layer prefixes.

    Section 3 shows that if each receiver must pick a fixed subset of
    layers for the whole session — so its rate is drawn from the
    finite set of cumulative layer rates — a max-min fair allocation
    need not exist.  This module enumerates the discrete feasible
    allocations of such a network and searches them for one satisfying
    Definition 1, reproducing the paper's single-link two-session
    counterexample and letting tests probe other configurations. *)

type t
(** A discrete allocation problem: a network whose session [i]
    restricts each of its receivers to rates from [Scheme] [i]'s
    achievable set. *)

val make : Mmfair_core.Network.t -> Scheme.t array -> t
(** [make net schemes] pairs each session with its scheme.  Raises
    [Invalid_argument] on a length mismatch.  The network's
    redundancy functions are honored when computing link usage.
    Enumeration is exponential in the receiver count — intended for
    the paper's small counterexamples (≲ 12 receivers with small
    schemes). *)

val feasible_allocations : t -> Mmfair_core.Allocation.t list
(** Every feasible allocation in which each receiver's rate is an
    achievable cumulative rate of its session's scheme (including 0 =
    joined to nothing).  Single-rate sessions are restricted to equal
    levels across receivers.  Rates are additionally capped by the
    session's [ρ_i]. *)

val is_max_min_within : Mmfair_core.Allocation.t -> Mmfair_core.Allocation.t list -> bool
(** [is_max_min_within a all] checks Definition 1 of the paper with
    the feasible set [all]: for every alternative [b] and receiver [r]
    with [b(r) > a(r)] there is another receiver [r'] with
    [a(r') ≤ a(r)] and [b(r') < a(r')]. *)

val max_min_allocation : t -> Mmfair_core.Allocation.t option
(** The max-min fair allocation over the discrete feasible set, or
    [None] when — as in the paper's example — none exists. *)

val paper_counterexample : capacity:float -> t
(** The Section-3 example: one link of the given capacity, two unicast
    layered sessions, one with three layers of rate [capacity/3], the
    other with two layers of rate [capacity/2].  Its
    {!max_min_allocation} is [None]. *)
