module Network = Mmfair_core.Network
module Redundancy_fn = Mmfair_core.Redundancy_fn
module Graph = Mmfair_topology.Graph

let validate ~capacity ~sessions ~redundant ~redundancy name =
  if not (capacity > 0.0) then invalid_arg (name ^ ": capacity must be positive");
  if sessions < 1 then invalid_arg (name ^ ": need at least one session");
  if redundant < 0 || redundant > sessions then invalid_arg (name ^ ": redundant out of range");
  if redundancy < 1.0 then invalid_arg (name ^ ": redundancy must be >= 1")

let fair_rate ~capacity ~sessions ~redundant ~redundancy =
  validate ~capacity ~sessions ~redundant ~redundancy "Shared_link.fair_rate";
  let n = float_of_int sessions and m = float_of_int redundant in
  capacity /. (n -. m +. (m *. redundancy))

let normalized_fair_rate ~sessions ~redundant ~redundancy =
  fair_rate ~capacity:1.0 ~sessions ~redundant ~redundancy /. (1.0 /. float_of_int sessions)

let figure6_series ~ratios ~redundancies ~sessions =
  List.map
    (fun ratio ->
      let m =
        if ratio <= 0.0 then 0
        else Stdlib.max 1 (int_of_float (Float.round (ratio *. float_of_int sessions)))
      in
      let points =
        List.map
          (fun v -> (v, normalized_fair_rate ~sessions ~redundant:m ~redundancy:v))
          redundancies
      in
      (ratio, points))
    ratios

let network_for ~capacity ~sessions ~redundant ~redundancy =
  validate ~capacity ~sessions ~redundant ~redundancy "Shared_link.network_for";
  (* Senders on one side of the shared link, receivers on the other;
     every session's sole receiver gets a private (never binding)
     fanout link so no two same-session members collide on a node. *)
  let g = Graph.create ~nodes:2 in
  let shared = Graph.add_link g 0 1 capacity in
  ignore shared;
  let specs =
    Array.init sessions (fun i ->
        let leaf = Graph.add_node g in
        ignore (Graph.add_link g 1 leaf (capacity *. 10.0));
        let vfn = if i < redundant then Redundancy_fn.Scaled redundancy else Redundancy_fn.Efficient in
        Network.session ~vfn ~sender:0 ~receivers:[| leaf |] ())
  in
  Network.make g specs
