let validate ~lambda ~rates name =
  if not (lambda > 0.0) then invalid_arg (name ^ ": lambda must be positive");
  if Array.length rates = 0 then invalid_arg (name ^ ": need at least one receiver");
  Array.iter
    (fun a -> if a < 0.0 || a > lambda then invalid_arg (name ^ ": rates must lie in [0, lambda]"))
    rates

let expected_link_rate ~lambda ~rates =
  validate ~lambda ~rates "Random_joins.expected_link_rate";
  let miss = Array.fold_left (fun acc a -> acc *. (1.0 -. (a /. lambda))) 1.0 rates in
  lambda *. (1.0 -. miss)

let max_rate rates = Array.fold_left Stdlib.max 0.0 rates

let expected_redundancy ~lambda ~rates =
  let peak = max_rate rates in
  if peak <= 0.0 then invalid_arg "Random_joins.expected_redundancy: all rates zero";
  expected_link_rate ~lambda ~rates /. peak

let redundancy_upper_bound ~lambda ~rates =
  let peak = max_rate rates in
  if peak <= 0.0 then invalid_arg "Random_joins.redundancy_upper_bound: all rates zero";
  lambda /. peak

type figure5_config = { label : string; rate_of : int -> float }

let figure5_configs =
  [
    { label = "All 0.1"; rate_of = (fun _ -> 0.1) };
    { label = "All 0.5"; rate_of = (fun _ -> 0.5) };
    { label = "1st .5 rest .1"; rate_of = (fun t -> if t = 0 then 0.5 else 0.1) };
    { label = "All 0.9"; rate_of = (fun _ -> 0.9) };
    { label = "1st .9 rest .1"; rate_of = (fun t -> if t = 0 then 0.9 else 0.1) };
  ]

let figure5_point config ~receivers =
  if receivers < 1 then invalid_arg "Random_joins.figure5_point: need at least one receiver";
  let rates = Array.init receivers config.rate_of in
  expected_redundancy ~lambda:1.0 ~rates

let multi_layer_link_rate ~scheme ~rates =
  if Array.length rates = 0 then invalid_arg "Random_joins.multi_layer_link_rate: need a receiver";
  let top = Scheme.top_rate scheme in
  Array.iter
    (fun a ->
      if a < 0.0 || a > top then
        invalid_arg "Random_joins.multi_layer_link_rate: rates must lie in [0, top_rate]")
    rates;
  let m = Scheme.layers scheme in
  let usage = ref 0.0 in
  for layer = 1 to m do
    let lambda = Scheme.layer_rate scheme layer in
    (* probability a given layer-[layer] packet is wanted by nobody *)
    let miss = ref 1.0 in
    Array.iter
      (fun a ->
        let level = Scheme.level_for_rate scheme a in
        let p =
          if layer <= level then 1.0
          else if layer = level + 1 then (a -. Scheme.cumulative scheme level) /. lambda
          else 0.0
        in
        miss := !miss *. (1.0 -. p))
      rates;
    usage := !usage +. (lambda *. (1.0 -. !miss))
  done;
  !usage

let multi_layer_redundancy ~scheme ~rates =
  let peak = max_rate rates in
  if peak <= 0.0 then invalid_arg "Random_joins.multi_layer_redundancy: all rates zero";
  multi_layer_link_rate ~scheme ~rates /. peak

let simulate_redundancy ~rng ~packets_per_quantum ~quanta ~rates =
  if packets_per_quantum < 1 then
    invalid_arg "Random_joins.simulate_redundancy: need at least one packet per quantum";
  if quanta < 1 then invalid_arg "Random_joins.simulate_redundancy: need at least one quantum";
  validate ~lambda:1.0 ~rates "Random_joins.simulate_redundancy";
  let peak = max_rate rates in
  if peak <= 0.0 then invalid_arg "Random_joins.simulate_redundancy: all rates zero";
  let n = packets_per_quantum in
  let wanted =
    Array.map
      (fun a -> Stdlib.min n (int_of_float (Float.round (a *. float_of_int n))))
      rates
  in
  let covered = Array.make n false in
  let scratch = Array.init n Fun.id in
  let total_link_packets = ref 0 in
  for _ = 1 to quanta do
    Array.fill covered 0 n false;
    Array.iter
      (fun k ->
        (* Partial Fisher–Yates: the first k entries of scratch become a
           uniform k-subset of the packet ids. *)
        for i = 0 to k - 1 do
          let j = i + Mmfair_prng.Xoshiro.below rng (n - i) in
          let tmp = scratch.(i) in
          scratch.(i) <- scratch.(j);
          scratch.(j) <- tmp;
          covered.(scratch.(i)) <- true
        done)
      wanted;
    Array.iter (fun c -> if c then incr total_link_packets) covered
  done;
  let link_rate = float_of_int !total_link_packets /. float_of_int (quanta * n) in
  (* Normalize by the realized (rounded) peak rate so rounding of
     [a·n] to whole packets does not bias the ratio. *)
  let realized_peak = float_of_int (Array.fold_left Stdlib.max 0 wanted) /. float_of_int n in
  if realized_peak <= 0.0 then invalid_arg "Random_joins.simulate_redundancy: rounded rates are all zero";
  link_rate /. realized_peak
