(** Fair rates on a single shared bottleneck under redundancy — the
    paper's Section 3.1 and Figure 6.

    [n] sessions are all constrained by one link of capacity [c]; [m]
    of them are multi-rate with redundancy [v ≥ 1] there, the other
    [n − m] are efficient (redundancy 1).  The max-min fair receiver
    rate is then [c / ((n − m) + m·v)] for every session, and the
    paper plots it normalized by [c/n] (the fair rate when everyone is
    efficient). *)

val fair_rate : capacity:float -> sessions:int -> redundant:int -> redundancy:float -> float
(** The closed form [c / ((n−m) + m·v)].  Raises [Invalid_argument]
    unless [c > 0], [n ≥ 1], [0 ≤ m ≤ n], [v ≥ 1]. *)

val normalized_fair_rate : sessions:int -> redundant:int -> redundancy:float -> float
(** Figure 6's y-axis: {!fair_rate} divided by [c/n] (capacity cancels). *)

val figure6_series :
  ratios:float list -> redundancies:float list -> sessions:int ->
  (float * (float * float) list) list
(** [figure6_series ~ratios ~redundancies ~sessions] builds one curve
    per [m/n] ratio: pairs [(v, normalized rate)].  [m] is rounded to
    the nearest integer session count (at least 1 when the ratio is
    positive). *)

val network_for : capacity:float -> sessions:int -> redundant:int -> redundancy:float ->
  Mmfair_core.Network.t
(** An explicit star network realizing the Figure-6 scenario: [n]
    unicast sessions crossing one shared link of capacity [c], the
    first [m] of them carrying [Scaled v] link-rate functions.
    Running the Appendix-A allocator on it must reproduce
    {!fair_rate} — the integration test behind the closed form. *)
