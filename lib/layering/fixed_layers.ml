module Network = Mmfair_core.Network
module Allocation = Mmfair_core.Allocation

type t = { net : Network.t; schemes : Scheme.t array }

let make net schemes =
  if Array.length schemes <> Network.session_count net then
    invalid_arg "Fixed_layers.make: scheme count mismatch";
  { net; schemes }

(* Achievable rates for one receiver of session [i]: cumulative layer
   rates capped by rho (0 always included). *)
let receiver_choices t i =
  let rho = Network.rho t.net i in
  Array.to_list (Scheme.achievable_rates t.schemes.(i)) |> List.filter (fun a -> a <= rho)

let feasible_allocations t =
  let net = t.net in
  let m = Network.session_count net in
  (* Candidate rate vectors per session: for single-rate sessions all
     receivers share a level; for multi-rate, the cross product. *)
  let session_candidates i =
    let k = Array.length (Network.session_spec net i).Network.receivers in
    let choices = receiver_choices t i in
    match Network.session_type net i with
    | Network.Single_rate -> List.map (fun a -> Array.make k a) choices
    | Network.Multi_rate ->
        let rec product n =
          if n = 0 then [ [] ]
          else
            let rest = product (n - 1) in
            List.concat_map (fun a -> List.map (fun tl -> a :: tl) rest) choices
        in
        List.map Array.of_list (product k)
  in
  let rec combine i =
    if i = m then [ [] ]
    else
      let rest = combine (i + 1) in
      List.concat_map (fun v -> List.map (fun tl -> v :: tl) rest) (session_candidates i)
  in
  combine 0
  |> List.map (fun per_session -> Allocation.make net (Array.of_list per_session))
  |> List.filter Allocation.is_feasible

let is_max_min_within a all =
  let net = Allocation.network a in
  let receivers = Network.all_receivers net in
  List.for_all
    (fun b ->
      Array.for_all
        (fun r ->
          let ar = Allocation.rate a r and br = Allocation.rate b r in
          br <= ar
          || Array.exists
               (fun r' ->
                 r' <> r && Allocation.rate a r' <= ar && Allocation.rate b r' < Allocation.rate a r')
               receivers)
        receivers)
    all

let max_min_allocation t =
  let all = feasible_allocations t in
  List.find_opt (fun a -> is_max_min_within a all) all

let paper_counterexample ~capacity =
  if not (capacity > 0.0) then invalid_arg "Fixed_layers.paper_counterexample: capacity must be positive";
  let module G = Mmfair_topology.Graph in
  let g = G.create ~nodes:2 in
  let _link = G.add_link g 0 1 capacity in
  let s1 = Network.session ~sender:0 ~receivers:[| 1 |] () in
  let s2 = Network.session ~sender:0 ~receivers:[| 1 |] () in
  (* Both senders at node 0, both receivers at node 1: members of
     *different* sessions may share nodes. *)
  let net = Network.make g [| s1; s2 |] in
  let schemes =
    [| Scheme.uniform ~layers:3 ~rate:(capacity /. 3.0); Scheme.uniform ~layers:2 ~rate:(capacity /. 2.0) |]
  in
  make net schemes
