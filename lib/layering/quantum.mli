(** Quantum-based join/leave schedules (Section 3).

    The paper defines the quantum [Δt] as the smallest interval over
    which a receiver's average rate is measured, and shows a receiver
    with fair packet rate [a_{i,k}] can match it by joining a single
    layer of rate [μ ≥ max_k a_{i,k}] for exactly the first
    [a_{i,k}·Δt] packets of each quantum, then leaving (receiving
    [⌊a·Δt⌋] packets most quanta and [⌈a·Δt⌉] periodically so the
    long-run average approaches [a·Δt] — footnote 7).

    When receivers' packet subsets are nested (each receives a prefix
    of the quantum), the shared link forwards exactly
    [max_k a_{i,k}·Δt] packets — redundancy 1; uncorrelated subsets
    inflate the union toward Appendix B's expectation. *)

type strategy =
  | Prefix
      (** Sender-coordinated: every receiver takes the first packets
          of the quantum, so subsets are nested. *)
  | Random_subset
      (** Each receiver draws its packets uniformly at random,
          independently (Appendix B's model). *)

type outcome = {
  achieved_rates : float array;
      (** Long-run average packets/quantum per receiver, divided by
          the quantum length (in packets) — directly comparable to the
          requested fractional rates. *)
  link_rate : float;
      (** Average fraction of the quantum's packets the shared link
          forwarded. *)
  redundancy : float;
      (** [link_rate / max achieved_rates] (Definition 3). *)
}

val run :
  ?rng:Mmfair_prng.Xoshiro.t ->
  strategy:strategy ->
  packets_per_quantum:int ->
  quanta:int ->
  rates:float array ->
  unit ->
  outcome
(** Simulates [quanta] quanta of a single layer of [packets_per_quantum]
    packets, with per-receiver target rates given as fractions of the
    layer rate (in [[0, 1]]).  Fractional packet counts are handled by
    carrying the remainder across quanta, as in the paper's footnote.
    [rng] is required for [Random_subset] and ignored for [Prefix].
    Raises [Invalid_argument] on an empty rate array, rates outside
    [[0, 1]], non-positive sizes, or a missing [rng] when needed. *)
