(** Expected redundancy of a single layer under uncoordinated random
    joins — the paper's Appendix B and Figure 5.

    One layer transmits [λ] equally likely packets per quantum; each
    receiver [r_t] needing [a_t·Δt] packets picks them uniformly at
    random and independently of the other receivers.  The expected
    session link rate on a link shared by receivers with rates
    [{a_1…a_R}] is

    [E U = λ (1 − Π_t (1 − a_t/λ))],

    and the session's expected redundancy there is [E U / max_t a_t]
    (Definition 3).  {!simulate_redundancy} draws the same quantity by
    Monte Carlo over explicit random packet subsets, which tests use
    to validate the closed form. *)

val expected_link_rate : lambda:float -> rates:float array -> float
(** Appendix B's [E U_{i,j}].  Raises [Invalid_argument] unless
    [lambda > 0], every rate is in [[0, lambda]], and there is at
    least one rate. *)

val expected_redundancy : lambda:float -> rates:float array -> float
(** [expected_link_rate / max rates].  Raises [Invalid_argument] when
    all rates are zero. *)

val redundancy_upper_bound : lambda:float -> rates:float array -> float
(** The paper's bound: redundancy is at most [λ / max_t a_t] (the
    multiplicative inverse of the efficient-rate-to-transmission-rate
    ratio), approached as the number of receivers grows. *)

type figure5_config = {
  label : string;       (** Curve label as in the paper ("All 0.1", …). *)
  rate_of : int -> float;
      (** [rate_of t] is receiver [t]'s rate (0-based) as a fraction
          of [λ = 1]. *)
}
(** One Figure-5 curve configuration. *)

val figure5_configs : figure5_config list
(** The paper's five curves: All 0.1, All 0.5, 1st .5 rest .1,
    All 0.9, 1st .9 rest .1. *)

val figure5_point : figure5_config -> receivers:int -> float
(** Expected redundancy with the given receiver count ([λ = 1]). *)

val multi_layer_link_rate : scheme:Scheme.t -> rates:float array -> float
(** Expected link rate when the session splits its stream over the
    scheme's layers instead of one fat layer (the technical report's
    Appendix E).  A receiver with target rate [a] subscribes fully to
    the layers its rate covers ([level_for_rate]) and picks a uniform
    random fraction of the next layer's packets to make up the
    remainder; subscriptions to full layers are deterministic, so only
    the topmost partial layer suffers Appendix-B union inflation:

    [E U = Σ_L λ_L (1 − Π_t (1 − p_{t,L}))]

    with [p_{t,L} = 1] when receiver [t] is fully subscribed to layer
    [L], the leftover fraction when [L] is its partial layer, and [0]
    above.  Rates must lie within [[0, top_rate scheme]]. *)

val multi_layer_redundancy : scheme:Scheme.t -> rates:float array -> float
(** [multi_layer_link_rate / max rates].  The TR's Appendix-E finding,
    which tests assert: more layers never increase redundancy beyond
    the single-layer value and usually decrease it. *)

val simulate_redundancy :
  rng:Mmfair_prng.Xoshiro.t ->
  packets_per_quantum:int ->
  quanta:int ->
  rates:float array ->
  float
(** Monte-Carlo estimate: each quantum, receiver [t] selects
    [round (rates.(t) · packets)] distinct packets uniformly at random
    out of [packets_per_quantum] (rates are fractions of the layer
    rate); the link carries the union.  Returns measured link rate
    divided by the largest receiver rate. *)
