type strategy = Prefix | Random_subset

type outcome = {
  achieved_rates : float array;
  link_rate : float;
  redundancy : float;
}

let run ?rng ~strategy ~packets_per_quantum ~quanta ~rates () =
  if packets_per_quantum < 1 then invalid_arg "Quantum.run: need at least one packet per quantum";
  if quanta < 1 then invalid_arg "Quantum.run: need at least one quantum";
  if Array.length rates = 0 then invalid_arg "Quantum.run: need at least one receiver";
  Array.iter (fun a -> if a < 0.0 || a > 1.0 then invalid_arg "Quantum.run: rates must be in [0,1]") rates;
  let n = packets_per_quantum in
  let r = Array.length rates in
  (* Fractional carry: receiver k aims at rates.(k)·n packets per
     quantum; carry accumulates the remainder (footnote 7). *)
  let carry = Array.make r 0.0 in
  let received = Array.make r 0 in
  let covered = Array.make n false in
  let scratch = Array.init n Fun.id in
  let link_packets = ref 0 in
  for _ = 1 to quanta do
    Array.fill covered 0 n false;
    for k = 0 to r - 1 do
      let want = (rates.(k) *. float_of_int n) +. carry.(k) in
      let take = Stdlib.min n (int_of_float (Float.floor want)) in
      carry.(k) <- want -. float_of_int take;
      received.(k) <- received.(k) + take;
      (match strategy with
      | Prefix ->
          for i = 0 to take - 1 do
            covered.(i) <- true
          done
      | Random_subset ->
          let rng =
            match rng with
            | Some rng -> rng
            | None -> invalid_arg "Quantum.run: Random_subset requires an rng"
          in
          (* Partial Fisher–Yates for a uniform [take]-subset. *)
          Array.iteri (fun i _ -> scratch.(i) <- i) scratch;
          for i = 0 to take - 1 do
            let j = i + Mmfair_prng.Xoshiro.below rng (n - i) in
            let tmp = scratch.(i) in
            scratch.(i) <- scratch.(j);
            scratch.(j) <- tmp;
            covered.(scratch.(i)) <- true
          done)
    done;
    Array.iter (fun c -> if c then incr link_packets) covered
  done;
  let denom = float_of_int (quanta * n) in
  let achieved_rates = Array.map (fun c -> float_of_int c /. denom) received in
  let link_rate = float_of_int !link_packets /. denom in
  let peak = Array.fold_left Stdlib.max 0.0 achieved_rates in
  let redundancy = if peak > 0.0 then link_rate /. peak else 1.0 in
  { achieved_rates; link_rate; redundancy }
