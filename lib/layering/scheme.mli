(** Layer schemes: how a sender splits data across multicast groups.

    A scheme fixes the number of layers [M] and the rate of each; a
    receiver "joined up to layer i" receives the aggregate of layers 1
    through i.  The paper's Section-4 protocols use the exponential
    scheme where the aggregate rate of layers 1..i equals [2^(i−1)]
    (so layer 1 has rate 1 and layer [i ≥ 2] has rate [2^(i−2)]). *)

type t
(** An immutable scheme with at least one layer. *)

val of_cumulative : float array -> t
(** [of_cumulative cum] builds a scheme from aggregate rates:
    [cum.(i)] is the rate a receiver joined up to layer [i+1] gets.
    Raises [Invalid_argument] unless the array is non-empty, positive
    and strictly increasing. *)

val of_layer_rates : float array -> t
(** [of_layer_rates r] with [r.(i)] the rate of layer [i+1]; all rates
    must be positive (else the cumulative would not strictly
    increase). *)

val exponential : layers:int -> t
(** The paper's scheme: cumulative rates [1, 2, 4, …, 2^(layers−1)].
    [layers ≥ 1]. *)

val uniform : layers:int -> rate:float -> t
(** [layers] equal-rate layers of the given positive [rate] — the
    Section-3 nonexistence example uses two such schemes. *)

val layers : t -> int
(** The paper's [M]. *)

val cumulative : t -> int -> float
(** [cumulative s i] is the aggregate rate of layers 1..i, for
    [0 ≤ i ≤ layers] ([0.] at 0).  Raises [Invalid_argument] outside
    that range. *)

val layer_rate : t -> int -> float
(** [layer_rate s i] is the rate of layer [i] alone, [1 ≤ i ≤ layers]. *)

val top_rate : t -> float
(** [cumulative s (layers s)]. *)

val achievable_rates : t -> float array
(** All rates a receiver can hold long-term by joining a fixed prefix
    of layers: [[|0; cum 1; …; cum M|]]. *)

val level_for_rate : t -> float -> int
(** [level_for_rate s a] is the largest level [i] with
    [cumulative s i ≤ a] — the layers a receiver wanting average rate
    [a] can permanently keep. *)

val pp : Format.formatter -> t -> unit
