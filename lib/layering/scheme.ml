type t = { cum : float array }

let of_cumulative cum =
  let n = Array.length cum in
  if n = 0 then invalid_arg "Scheme.of_cumulative: need at least one layer";
  if not (cum.(0) > 0.0) then invalid_arg "Scheme.of_cumulative: rates must be positive";
  for i = 1 to n - 1 do
    if not (cum.(i) > cum.(i - 1)) then
      invalid_arg "Scheme.of_cumulative: cumulative rates must strictly increase"
  done;
  { cum = Array.copy cum }

let of_layer_rates r =
  let n = Array.length r in
  if n = 0 then invalid_arg "Scheme.of_layer_rates: need at least one layer";
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      if not (x > 0.0) then invalid_arg "Scheme.of_layer_rates: rates must be positive";
      acc := !acc +. x;
      cum.(i) <- !acc)
    r;
  { cum }

let exponential ~layers =
  if layers < 1 then invalid_arg "Scheme.exponential: need at least one layer";
  { cum = Array.init layers (fun i -> Float.of_int (1 lsl i)) }

let uniform ~layers ~rate =
  if layers < 1 then invalid_arg "Scheme.uniform: need at least one layer";
  if not (rate > 0.0) then invalid_arg "Scheme.uniform: rate must be positive";
  { cum = Array.init layers (fun i -> float_of_int (i + 1) *. rate) }

let layers t = Array.length t.cum

let cumulative t i =
  if i < 0 || i > Array.length t.cum then invalid_arg "Scheme.cumulative: level out of range";
  if i = 0 then 0.0 else t.cum.(i - 1)

let layer_rate t i =
  if i < 1 || i > Array.length t.cum then invalid_arg "Scheme.layer_rate: layer out of range";
  cumulative t i -. cumulative t (i - 1)

let top_rate t = t.cum.(Array.length t.cum - 1)

let achievable_rates t = Array.append [| 0.0 |] (Array.copy t.cum)

let level_for_rate t a =
  let m = layers t in
  let rec go i = if i < m && cumulative t (i + 1) <= a then go (i + 1) else i in
  go 0

let pp fmt t =
  Format.fprintf fmt "layers(cum):";
  Array.iter (fun c -> Format.fprintf fmt " %g" c) t.cum
