#!/usr/bin/env bash
# Regenerate every artifact in results/ plus the top-level outputs.
# Usage: scripts/reproduce.sh [--paper]   (--paper adds the full
# 100x100k x30 Figure-8 sweeps; minutes of CPU)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
dune build @all

echo "== tests =="
dune runtest --force --no-buffer 2>&1 | tee test_output.txt | tail -2

echo "== quick experiment sweep =="
dune exec bin/mmfair.exe -- all --seed 42 > results/all_quick.txt
echo "  -> results/all_quick.txt"

if [ "${1:-}" = "--paper" ]; then
  echo "== paper-scale Figure 8 =="
  dune exec bin/mmfair.exe -- fig8 --shared 0.0001 --scale paper --seed 42 > results/fig8a_paper.txt
  dune exec bin/mmfair.exe -- fig8 --shared 0.05   --scale paper --seed 42 > results/fig8b_paper.txt
  echo "  -> results/fig8{a,b}_paper.txt"
fi

echo "== per-experiment CSV dumps =="
mkdir -p results/csv
for cmd in fig5 fig6 latency priority layers tcpfair churn convergence single-rate compete ecn tcpfriendly membership claims; do
  dune exec bin/mmfair.exe -- "$cmd" --csv > "results/csv/$cmd.csv" 2>/dev/null || true
done
echo "  -> results/csv/*.csv"

echo "== benchmarks =="
dune exec bench/main.exe 2>&1 | tee bench_output.txt | tail -3
