#!/usr/bin/env python3
"""Merge every committed BENCH_*.json into one trajectory document.

The repo's benchmarks each write their own machine-readable file
(BENCH_allocator.json, BENCH_churn.json, ...), one schema per bench.
CI and humans tracking performance over time want a single artifact;
this script globs the bench files and writes
results/bench_trajectory.json:

    {
      "schema": "mmfair.bench.trajectory/v1",
      "sources": ["BENCH_allocator.json", "BENCH_churn.json"],
      "benches": {
        "allocator": { ...BENCH_allocator.json verbatim... },
        "churn":     { ...BENCH_churn.json verbatim... }
      },
      "headlines": {
        "churn": { "batch_speedup": 1.66, "parallel_speedup_at_4_domains": 2.01,
                   "parallel_host_cpus": 1, "serving_events_per_s": 2000.0,
                   "serving_max_staleness_s": 0.01 }
      }
    }

Bench documents are embedded verbatim (their own "schema" fields keep
them self-describing); the key is the BENCH_<key>.json stem.  For
schemas the script knows (mmfair.bench.churn/v2+, whose v3 added the
"parallel" domain-scaling section, v4 the "serving" churnd
sustained-ingest section, and v6 the flow-level "stability" bracket
with sojourn/fair-rate tails; and mmfair.bench.allocator/v3+, whose
generated-topology scaling curves carry fitted exponents and a
peak-live-words audit) it also lifts the headline gate
numbers into "headlines" so the trajectory is scannable without
digging into each embedded document.  Stdlib only — no third-party
imports.

Usage: scripts/bench_trajectory.py [--repo DIR] [--out FILE]
Exits non-zero when no bench files are found or one fails to parse.
"""

import argparse
import glob
import json
import os
import sys


def headline(doc):
    """Gate numbers for schemas we know; None for the rest."""
    schema = doc.get("schema", "")
    if schema.startswith("mmfair.bench.allocator/"):
        # allocator/v3 and later: generated-topology scaling curves
        # with fitted log-log exponents and a peak-live-words audit.
        h = {}
        for curve in doc.get("curves") or []:
            if not isinstance(curve, dict) or "name" not in curve:
                continue
            name = str(curve["name"]).replace("-", "_")
            for exp_key in ("build_exponent", "solve_exponent", "event_exponent"):
                if exp_key in curve:
                    h[f"{name}_{exp_key}"] = curve[exp_key]
            points = curve.get("points")
            if isinstance(points, list) and points:
                try:
                    top = max(points, key=lambda p: p["sessions"])
                    h[f"{name}_max_sessions"] = top["sessions"]
                    h[f"{name}_peak_live_words"] = top["peak_live_words"]
                except (KeyError, TypeError):
                    pass
        return h or None
    if not schema.startswith("mmfair.bench.churn/"):
        return None
    h = {}
    try:
        h["batch_speedup"] = doc["batch"]["speedup"]
    except (KeyError, TypeError):
        pass
    par = doc.get("parallel")  # churn/v3 and later
    if isinstance(par, dict):
        try:
            rows = {r["domains"]: r["speedup_vs_1"] for r in par["rows"]}
            h["parallel_speedup_at_4_domains"] = rows.get(4)
            h["parallel_host_cpus"] = par["host_cpus"]
        except (KeyError, TypeError):
            pass
    srv = doc.get("serving")  # churn/v4 and later: churnd sustained ingest
    if isinstance(srv, dict):
        try:
            h["serving_events_per_s"] = srv["events_per_s"]
            h["serving_max_staleness_s"] = srv["max_staleness_s"]
        except (KeyError, TypeError):
            pass
        sampler = srv.get("sampler")  # churn/v5 and later: telemetry sampler cost
        if isinstance(sampler, dict):
            try:
                h["sampler_duty_cycle"] = sampler["duty_cycle"]
            except (KeyError, TypeError):
                pass
    stb = doc.get("stability")  # churn/v6 and later: flow-level stability bracket
    if isinstance(stb, dict):
        try:
            rows = {r["load"]: r for r in stb["rows"]}
            h["stability_verdicts"] = {
                str(load): row["verdict"] for load, row in sorted(rows.items())
            }
            stable = rows.get(0.8)
            if stable is not None:
                h["stability_events_per_s_at_0.8"] = stable["events_per_s"]
                h["stability_sojourn_p50_at_0.8"] = stable["sojourn_p50"]
                h["stability_sojourn_p99_at_0.8"] = stable["sojourn_p99"]
                h["stability_flow_rate_p50_at_0.8"] = stable["flow_rate_p50"]
                h["stability_flow_rate_p99_at_0.8"] = stable["flow_rate_p99"]
        except (KeyError, TypeError):
            pass
    return h or None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--repo",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root to glob BENCH_*.json in (default: the script's repo)",
    )
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: <repo>/results/bench_trajectory.json)",
    )
    args = ap.parse_args()

    paths = sorted(glob.glob(os.path.join(args.repo, "BENCH_*.json")))
    if not paths:
        print(f"bench_trajectory: no BENCH_*.json under {args.repo}", file=sys.stderr)
        return 1

    benches = {}
    sources = []
    for path in paths:
        name = os.path.basename(path)
        key = name[len("BENCH_") : -len(".json")]
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench_trajectory: {name}: {exc}", file=sys.stderr)
            return 1
        if not isinstance(doc, dict) or "schema" not in doc:
            print(f"bench_trajectory: {name}: missing \"schema\" field", file=sys.stderr)
            return 1
        benches[key] = doc
        sources.append(name)

    headlines = {}
    for key, doc in benches.items():
        h = headline(doc)
        if h is not None:
            headlines[key] = h

    out = args.out or os.path.join(args.repo, "results", "bench_trajectory.json")
    os.makedirs(os.path.dirname(out), exist_ok=True)
    merged = {
        "schema": "mmfair.bench.trajectory/v1",
        "generated_by": "scripts/bench_trajectory.py",
        "sources": sources,
        "benches": benches,
        "headlines": headlines,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out} ({len(benches)} benches: {', '.join(sorted(benches))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
