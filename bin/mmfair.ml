(* mmfair: command-line driver for the SIGCOMM'99 multicast-layering
   fairness reproduction.  One subcommand per paper figure plus an
   `allocate` command for user-supplied networks. *)

open Cmdliner
module Network = Mmfair_core.Network
module Allocation = Mmfair_core.Allocation
module Allocator = Mmfair_core.Allocator
module Properties = Mmfair_core.Properties
module Solver_error = Mmfair_core.Solver_error
module Graph = Mmfair_topology.Graph
module E = Mmfair_experiments

(* Exit codes (documented in README "Errors & exit codes"): 0 success,
   2 malformed input (parse/validation), 3 solver failure; cmdliner
   keeps its own 124/125 for CLI usage errors. *)
let exit_invalid_input = 2
let exit_solver_error = 3

(* Diagnostics must reach the terminal even though [exit] is imminent:
   always flush stderr before exiting. *)
let die code fmt = Printf.ksprintf (fun s -> Printf.eprintf "%s\n%!" s; exit code) fmt

let print_table ~csv table =
  if csv then print_string (E.Table.to_csv table) else E.Table.print table

let tele_term = Telemetry.term

let csv_flag =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an ASCII table.")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (experiments are deterministic per seed).")

(* ------------------------------------------------------------------ *)

let allocate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Network description file.")
  in
  let engine_conv = Arg.enum [ ("auto", `Auto); ("linear", `Linear); ("bisection", `Bisection) ] in
  let engine =
    Arg.(value & opt engine_conv `Auto & info [ "engine" ] ~doc:"Water-filling engine: auto, linear or bisection.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Narrate the water-filling rounds.") in
  let run tele file engine trace =
    Telemetry.wrap tele @@ fun () ->
    let parsed = Mmfair_workload.Net_parser.parse_file file in
    let net = parsed.Mmfair_workload.Net_parser.net in
    let result =
      match Allocator.max_min_trace_result ~engine net with
      | Ok result -> result
      | Error e -> die exit_solver_error "mmfair allocate: %s" (Solver_error.to_string e)
    in
    if trace then Allocator.pp_trace Format.std_formatter result;
    let alloc = result.Allocator.allocation in
    let g = Network.graph net in
    let receiver_rows =
      Array.to_list
        (Array.map
           (fun (r : Network.receiver_id) ->
             let session = parsed.Mmfair_workload.Net_parser.session_names.(r.Network.session) in
             let bottlenecks =
               Allocator.bottleneck_links alloc r
               |> List.map (fun l -> parsed.Mmfair_workload.Net_parser.link_names.(l))
               |> String.concat ","
             in
             let unbottlenecked =
               let rho = Network.rho net r.Network.session in
               if Float.is_finite rho && Allocation.rate alloc r >= rho -. 1e-9 then "(rho)"
               else "(single-rate coupling)"
             in
             [
               Printf.sprintf "%s[%d]" session (r.Network.index + 1);
               E.Table.cell_f (Allocation.rate alloc r);
               (if bottlenecks = "" then unbottlenecked else bottlenecks);
             ])
           (Network.all_receivers net))
    in
    print_table ~csv:false
      (E.Table.make ~title:"Max-min fair receiver rates" ~columns:[ "receiver"; "rate"; "bottlenecks" ]
         receiver_rows);
    let link_rows =
      List.map
        (fun l ->
          [
            parsed.Mmfair_workload.Net_parser.link_names.(l);
            E.Table.cell_f (Allocation.link_rate alloc l);
            E.Table.cell_f (Graph.capacity g l);
            (if Allocation.fully_utilized alloc l then "full" else "");
          ])
        (Graph.links g)
    in
    print_table ~csv:false
      (E.Table.make ~title:"Link utilization" ~columns:[ "link"; "rate"; "capacity"; "" ] link_rows);
    Properties.pp_report Format.std_formatter (Properties.check_all alloc)
  in
  let doc = "compute the max-min fair allocation of a network description file" in
  let man =
    [
      `S Manpage.s_description;
      `P "The file format (# comments allowed):";
      `Pre Mmfair_workload.Net_parser.example;
    ]
  in
  Cmd.v (Cmd.info "allocate" ~doc ~man) Term.(const run $ tele_term $ file $ engine $ trace)

let dot_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Network description file.")
  in
  let run tele file =
    Telemetry.wrap tele @@ fun () ->
    let parsed = Mmfair_workload.Net_parser.parse_file file in
    print_string (Graph.to_dot (Network.graph parsed.Mmfair_workload.Net_parser.net))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"export a network description file as Graphviz DOT")
    Term.(const run $ tele_term $ file)

let example_net_cmd =
  let run tele = Telemetry.wrap tele @@ fun () -> print_string Mmfair_workload.Net_parser.example in
  Cmd.v
    (Cmd.info "example-net" ~doc:"print an example network description (the paper's Figure 2)")
    Term.(const run $ tele_term)

(* Generated topologies with placed sessions, emitted in the network
   description format so the output pipes straight into `mmfair
   allocate` / `mmfair dot` / churn traces.  Placements mirror the
   scaling bench's: fat-tree sessions stay inside their edge switch's
   host group, power-law sessions run node -> first neighbor, and
   star-of-stars carries one multicast session from the root to every
   leaf (the paper's shared-trunk shape). *)
let topo_cmd =
  let module Builders = Mmfair_topology.Builders in
  let kind_conv =
    Arg.enum
      [ ("fat-tree", `Fat_tree); ("power-law", `Power_law); ("star-of-stars", `Star_of_stars) ]
  in
  let kind =
    Arg.(required & pos 0 (some kind_conv) None
         & info [] ~docv:"KIND"
             ~doc:"Topology family: $(b,fat-tree), $(b,power-law) or $(b,star-of-stars).")
  in
  let k =
    Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Fat tree: pod arity (even, at least 4).")
  in
  let per_host =
    Arg.(value & opt int 1
         & info [ "per-host" ] ~docv:"N" ~doc:"Fat tree: single-receiver sessions per host.")
  in
  let nodes =
    Arg.(value & opt int 1024 & info [ "nodes" ] ~docv:"N" ~doc:"Power law: node count.")
  in
  let attach =
    Arg.(value & opt int 2
         & info [ "attach" ] ~docv:"M" ~doc:"Power law: links each newcomer attaches with.")
  in
  let clusters =
    Arg.(value & opt int 8 & info [ "clusters" ] ~docv:"C" ~doc:"Star of stars: cluster count.")
  in
  let leaves =
    Arg.(value & opt int 1
         & info [ "leaves" ] ~docv:"L" ~doc:"Star of stars: leaves per cluster.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the description to $(docv) instead of stdout.")
  in
  let run tele kind k per_host nodes attach clusters leaves seed out =
    Telemetry.wrap tele @@ fun () ->
    let graph, specs =
      match kind with
      | `Fat_tree ->
          if k < 4 || k mod 2 <> 0 then
            die exit_invalid_input "mmfair topo: fat-tree needs an even -k >= 4 (got %d)" k;
          if per_host < 0 then
            die exit_invalid_input "mmfair topo: --per-host must be >= 0 (got %d)" per_host;
          let t = Builders.fat_tree ~k () in
          let half = k / 2 in
          let hosts = t.Builders.hosts in
          (* Sibling under the same edge switch, rotating through the
             host group so repeated sessions from one host spread out. *)
          let peer h j =
            let base = h / half * half in
            base + ((h - base + 1 + (j mod (half - 1))) mod half)
          in
          let specs =
            Array.init
              (Array.length hosts * per_host)
              (fun s ->
                let h = s / per_host and j = s mod per_host in
                Network.session ~sender:hosts.(h) ~receivers:[| hosts.(peer h j) |] ())
          in
          (t.Builders.graph, specs)
      | `Power_law ->
          let rng = Mmfair_prng.Xoshiro.create ~seed () in
          let t =
            try Builders.power_law ~rng ~nodes ~attach ~cap_lo:1.0 ~cap_hi:4.0
            with Invalid_argument msg -> die exit_invalid_input "mmfair topo: %s" msg
          in
          let g = t.Builders.graph in
          let specs =
            Array.init nodes (fun v ->
                match Graph.neighbors g v with
                | (u, _) :: _ -> Network.session ~sender:v ~receivers:[| u |] ()
                | [] -> die exit_invalid_input "mmfair topo: isolated node %d" v)
          in
          (g, specs)
      | `Star_of_stars ->
          let t =
            try
              Builders.star_of_stars ~clusters ~leaves_per_cluster:leaves ~trunk_capacity:4.0
                ~leaf_capacity:1.0 ()
            with Invalid_argument msg -> die exit_invalid_input "mmfair topo: %s" msg
          in
          let receivers = Array.concat (Array.to_list t.Builders.leaves) in
          (t.Builders.graph, [| Network.session ~sender:t.Builders.root ~receivers () |])
    in
    let net = Network.make graph specs in
    let doc = Mmfair_workload.Net_parser.render net in
    (match out with
    | None -> print_string doc
    | Some file ->
        let oc = open_out file in
        output_string oc doc;
        close_out oc);
    Printf.eprintf "mmfair topo: %d nodes, %d links, %d sessions, %d receivers\n%!"
      (Graph.node_count graph) (Graph.link_count graph) (Network.session_count net)
      (Network.receiver_count net)
  in
  let doc = "generate a fat-tree, power-law or star-of-stars network description" in
  let man =
    [
      `S Manpage.s_description;
      `P "Emits a network description (the `mmfair allocate` input format) for one of the \
          generated topology families, with sessions already placed: fat-tree confines each \
          session to its edge switch's host group, power-law sends each node to its first \
          neighbor, star-of-stars multicasts from the root to every leaf.";
    ]
  in
  Cmd.v (Cmd.info "topo" ~doc ~man)
    Term.(const run $ tele_term $ kind $ k $ per_host $ nodes $ attach $ clusters $ leaves
          $ seed_arg $ out)

(* ------------------------------------------------------------------ *)

let fig1_cmd =
  let run tele =
    Telemetry.wrap tele @@ fun () ->
    let o = E.Fig_examples.run_figure1 () in
    E.Table.print o.E.Fig_examples.table
  in
  Cmd.v (Cmd.info "fig1" ~doc:"reproduce Figure 1 (multi-rate max-min fair example)")
    Term.(const run $ tele_term)

let fig2_cmd =
  let multi = Arg.(value & flag & info [ "multi" ] ~doc:"Make S1 multi-rate instead of single-rate.") in
  let run tele multi =
    Telemetry.wrap tele @@ fun () ->
    let session1_type = if multi then Network.Multi_rate else Network.Single_rate in
    let o = E.Fig_examples.run_figure2 ~session1_type () in
    E.Table.print o.E.Fig_examples.table;
    Properties.pp_report Format.std_formatter o.E.Fig_examples.properties
  in
  Cmd.v (Cmd.info "fig2" ~doc:"reproduce Figure 2 (single-rate sessions break fairness properties)")
    Term.(const run $ tele_term $ multi)

let fig3_cmd =
  let run tele =
    Telemetry.wrap tele @@ fun () ->
    let a = E.Fig_examples.run_figure3a () in
    E.Table.print a.E.Fig_examples.table;
    let b = E.Fig_examples.run_figure3b () in
    E.Table.print b.E.Fig_examples.table
  in
  Cmd.v (Cmd.info "fig3" ~doc:"reproduce Figure 3 (receiver removal moves fair rates both ways)")
    Term.(const run $ tele_term)

let fig4_cmd =
  let run tele =
    Telemetry.wrap tele @@ fun () ->
    let o = E.Fig_examples.run_figure4 () in
    E.Table.print o.E.Fig_examples.table;
    Properties.pp_report Format.std_formatter o.E.Fig_examples.properties
  in
  Cmd.v (Cmd.info "fig4" ~doc:"reproduce Figure 4 (redundancy breaks session-perspective fairness)")
    Term.(const run $ tele_term)

let fig5_cmd =
  let simulate =
    Arg.(value & flag & info [ "simulate" ] ~doc:"Add Monte-Carlo cross-checks next to the closed form.")
  in
  let run tele simulate csv seed =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv (E.Fig5_random_joins.to_table (E.Fig5_random_joins.run ~simulate ~seed ()))
  in
  Cmd.v (Cmd.info "fig5" ~doc:"reproduce Figure 5 (single-layer redundancy under random joins)")
    Term.(const run $ tele_term $ simulate $ csv_flag $ seed_arg)

let fig6_cmd =
  let sessions =
    Arg.(value & opt int 100 & info [ "sessions" ] ~docv:"N" ~doc:"Sessions sharing the bottleneck.")
  in
  let run tele sessions csv =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv (E.Fig6_fair_rate.to_table (E.Fig6_fair_rate.run ~sessions ()))
  in
  Cmd.v (Cmd.info "fig6" ~doc:"reproduce Figure 6 (fair rate vs redundancy)")
    Term.(const run $ tele_term $ sessions $ csv_flag)

let scale_conv =
  Arg.enum [ ("quick", E.Fig8_protocols.quick_scale); ("paper", E.Fig8_protocols.paper_scale) ]

let fig8_cmd =
  let shared =
    Arg.(value & opt float 0.0001 & info [ "shared" ] ~docv:"P" ~doc:"Shared-link loss rate (paper: 0.0001 and 0.05).")
  in
  let scale =
    Arg.(value & opt scale_conv E.Fig8_protocols.quick_scale
         & info [ "scale" ] ~docv:"SCALE" ~doc:"quick (seconds) or paper (the full 100x100k x30 sweep).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Parallel domains for the replicate runs.")
  in
  let run tele shared scale domains csv seed =
    Telemetry.wrap tele @@ fun () ->
    let curves = E.Fig8_protocols.run ~scale ~domains ~shared_loss:shared ~seed () in
    print_table ~csv (E.Fig8_protocols.to_table ~shared_loss:shared curves)
  in
  Cmd.v (Cmd.info "fig8" ~doc:"reproduce Figure 8 (protocol redundancy vs independent loss)")
    Term.(const run $ tele_term $ shared $ scale $ domains $ csv_flag $ seed_arg)

let markov_cmd =
  let shared =
    Arg.(value & opt float 0.0001 & info [ "shared" ] ~docv:"P" ~doc:"Shared-link loss rate.")
  in
  let layers = Arg.(value & opt int 4 & info [ "layers" ] ~docv:"M" ~doc:"Layers (exact chains; keep small).") in
  let run tele shared layers =
    Telemetry.wrap tele @@ fun () ->
    List.iter
      (fun grid ->
        E.Table.print (E.Markov_redundancy.to_table grid);
        Printf.printf "equal-loss maximizes redundancy: %b\n\n"
          (E.Markov_redundancy.equal_loss_dominates grid))
      (E.Markov_redundancy.run ~layers ~shared_loss:shared ())
  in
  Cmd.v (Cmd.info "markov" ~doc:"exact 2-receiver Markov analysis of the three protocols (Figure 7a)")
    Term.(const run $ tele_term $ shared $ layers)

let nonexist_cmd =
  let capacity = Arg.(value & opt float 6.0 & info [ "capacity" ] ~docv:"C" ~doc:"Link capacity.") in
  let run tele capacity =
    Telemetry.wrap tele @@ fun () ->
    let o = E.Nonexistence.run ~capacity () in
    E.Table.print o.E.Nonexistence.table;
    Printf.printf "feasible allocations: %d; max-min fair allocation exists: %b\n"
      o.E.Nonexistence.feasible_count o.E.Nonexistence.max_min_exists
  in
  Cmd.v (Cmd.info "nonexist" ~doc:"Section-3 example: fixed layers admit no max-min fair allocation")
    Term.(const run $ tele_term $ capacity)

let replace_cmd =
  let random = Arg.(value & flag & info [ "random" ] ~doc:"Use a random network instead of Figure 2.") in
  let run tele random seed =
    Telemetry.wrap tele @@ fun () ->
    let o = if random then E.Replacement.run_random ~seed () else E.Replacement.run_figure2 () in
    E.Table.print o.E.Replacement.table
  in
  Cmd.v (Cmd.info "replace" ~doc:"Lemma 3 replacement study: single-rate -> multi-rate, step by step")
    Term.(const run $ tele_term $ random $ seed_arg)

let latency_cmd =
  let loss = Arg.(value & opt float 0.03 & info [ "loss" ] ~docv:"P" ~doc:"Fanout-link loss rate.") in
  let run tele loss seed csv =
    Telemetry.wrap tele @@ fun () ->
    let curves = E.Extensions.leave_latency ~seed ~independent_loss:loss () in
    print_table ~csv (E.Extensions.latency_table curves)
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"extension: redundancy vs leave latency (Section-5 prediction)")
    Term.(const run $ tele_term $ loss $ seed_arg $ csv_flag)

let priority_cmd =
  let loss = Arg.(value & opt float 0.03 & info [ "loss" ] ~docv:"P" ~doc:"Fanout-link loss rate.") in
  let run tele loss seed csv =
    Telemetry.wrap tele @@ fun () ->
    let rows = E.Extensions.priority_dropping ~seed ~independent_loss:loss () in
    print_table ~csv (E.Extensions.priority_table rows)
  in
  Cmd.v
    (Cmd.info "priority" ~doc:"extension: uniform vs priority (layer-biased) dropping")
    Term.(const run $ tele_term $ loss $ seed_arg $ csv_flag)

let layers_cmd =
  let receivers =
    Arg.(value & opt int 50 & info [ "receivers" ] ~docv:"N" ~doc:"Receivers sharing the link.")
  in
  let rate = Arg.(value & opt float 0.35 & info [ "rate" ] ~docv:"A" ~doc:"Common receiver rate in (0,1].") in
  let run tele receivers rate csv =
    Telemetry.wrap tele @@ fun () ->
    let pts = E.Extensions.layers_vs_redundancy ~receivers ~rate () in
    print_table ~csv (E.Extensions.layers_table ~receivers ~rate pts)
  in
  Cmd.v
    (Cmd.info "layers" ~doc:"extension (TR App. E): redundancy vs number of layers")
    Term.(const run $ tele_term $ receivers $ rate $ csv_flag)

let tcpfair_cmd =
  let rtts =
    Arg.(value & opt (list float) [ 0.01; 0.02; 0.05; 0.1 ]
         & info [ "rtts" ] ~docv:"R1,R2,..." ~doc:"Round-trip times of the competing flows.")
  in
  let run tele rtts csv =
    Telemetry.wrap tele @@ fun () ->
    let o = E.Extensions.tcp_fairness ~rtts:(Array.of_list rtts) () in
    print_table ~csv o.E.Extensions.table;
    if not csv then
      Printf.printf "weighted fairness properties hold: %b\n" o.E.Extensions.weighted_fair
  in
  Cmd.v
    (Cmd.info "tcpfair" ~doc:"extension: weighted (1/RTT) max-min fairness on a bottleneck")
    Term.(const run $ tele_term $ rtts $ csv_flag)

let session_churn_cmd =
  let sessions = Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N" ~doc:"Arriving/departing sessions.") in
  let run tele sessions seed csv =
    Telemetry.wrap tele @@ fun () ->
    let o = E.Extensions.churn ~seed ~sessions () in
    print_table ~csv o.E.Extensions.table;
    if not csv then
      Printf.printf "observer rate increases: %d, decreases: %d\n" o.E.Extensions.observer_increases
        o.E.Extensions.observer_decreases
  in
  Cmd.v
    (Cmd.info "session-churn" ~doc:"extension: fair rates under session arrivals and departures")
    Term.(const run $ tele_term $ sessions $ seed_arg $ csv_flag)

(* `mmfair churn`: replay a .churn trace (or a seeded random one)
   through the incremental engine of lib/dynamic.  Both trace sources
   feed one shared driver that applies replay *steps* — lone events or
   coalesced batches (file `batch ... end` blocks, or --coalesce
   re-chunking). *)
let churn_cmd =
  let module Engine = Mmfair_dynamic.Engine in
  let module Batch = Mmfair_dynamic.Batch in
  let module Churn_parser = Mmfair_workload.Churn_parser in
  let module Churn_gen = Mmfair_workload.Churn_gen in
  let module Net_parser = Mmfair_workload.Net_parser in
  let net_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Network description file.")
  in
  let trace_file =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"TRACE" ~doc:"Churn trace file (.churn) to replay.")
  in
  let random_events =
    Arg.(value & opt (some int) None
         & info [ "random" ] ~docv:"N" ~doc:"Generate N random events instead of replaying a file (see --seed).")
  in
  let engine_conv = Arg.enum [ ("auto", `Auto); ("linear", `Linear); ("bisection", `Bisection) ] in
  let engine =
    Arg.(value & opt engine_conv `Auto & info [ "engine" ] ~doc:"Water-filling engine: auto, linear or bisection.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ] ~doc:"After every step, cross-check the incremental allocation \
                                   against a from-scratch solve (relative 1e-9).")
  in
  let rates = Arg.(value & flag & info [ "rates" ] ~doc:"Also print the final receiver rates.") in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Solve each epoch's disjoint fairness components on a pool of N OCaml domains \
                   (default 1 = sequential).  Allocations are identical at every N.")
  in
  let coalesce =
    Arg.(value & opt ~vopt:(Some 16) (some int) None
         & info [ "coalesce" ] ~docv:"N"
             ~doc:"Re-chunk the whole trace into batches of N events (16 when given bare), each \
                   applied as one coalesced epoch (Mmfair_dynamic.Batch).  Overrides any batch \
                   blocks in the file; without this flag, file batch blocks are honored as \
                   written.")
  in
  let run tele net_file trace_file random_events engine verify rates domains coalesce seed csv =
    Telemetry.wrap tele @@ fun () ->
    if domains < 1 then die exit_invalid_input "mmfair churn: --domains wants a positive count";
    let parsed = Net_parser.parse_file net_file in
    let net = parsed.Net_parser.net in
    let items =
      match (trace_file, random_events) with
      | Some _, Some _ -> die exit_invalid_input "mmfair churn: --replay and --random are exclusive"
      | Some f, None -> Churn_parser.parse_items_file parsed f
      | None, Some n ->
          if n < 0 then die exit_invalid_input "mmfair churn: --random must be non-negative";
          let rng = Mmfair_prng.Xoshiro.create ~seed () in
          List.map
            (fun ev -> Churn_parser.Single ev)
            (Churn_gen.generate ~rng net { Churn_gen.default with Churn_gen.events = n })
      | None, None -> die exit_invalid_input "mmfair churn: give a trace with --replay FILE or --random N"
    in
    (* Replay steps: each inner list is applied as one epoch. *)
    let steps =
      match coalesce with
      | None ->
          List.map (function Churn_parser.Single ev -> [ ev ] | Churn_parser.Batch evs -> evs) items
      | Some n ->
          if n < 1 then die exit_invalid_input "mmfair churn: --coalesce wants a positive batch size";
          let rec chunk acc cur k = function
            | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
            | ev :: rest ->
                if k + 1 = n then chunk (List.rev (ev :: cur) :: acc) [] 0 rest
                else chunk acc (ev :: cur) (k + 1) rest
          in
          chunk [] [] 0 (Churn_parser.flatten items)
    in
    let eng =
      match Engine.create_result ~engine ~domains net with
      | Ok eng -> eng
      | Error e -> die exit_solver_error "mmfair churn: initial solve: %s" (Solver_error.to_string e)
    in
    let agree a b =
      Float.abs (a -. b) <= 1e-9 *. Stdlib.max 1.0 (Stdlib.max (Float.abs a) (Float.abs b))
    in
    let full_solves = ref 0 and reuse_sum = ref 0.0 and divergences = ref 0 in
    let events_total = ref 0 and cancelled_total = ref 0 in
    let rows =
      List.mapi
        (fun idx step ->
          let label =
            match step with
            | [ ev ] -> String.trim (Churn_parser.render ~names:parsed [ ev ])
            | evs -> Printf.sprintf "batch of %d" (List.length evs)
          in
          let stats =
            match Batch.apply_result eng step with
            | Ok s -> s
            | Error e ->
                die exit_solver_error "mmfair churn: step %d (%s): %s" (idx + 1) label
                  (Solver_error.to_string e)
          in
          if stats.Batch.full_solve then incr full_solves;
          reuse_sum := !reuse_sum +. stats.Batch.reuse_fraction;
          events_total := !events_total + stats.Batch.events;
          cancelled_total := !cancelled_total + stats.Batch.cancelled;
          if verify then begin
            let incremental = Engine.allocation eng and now = Engine.network eng in
            match Allocator.max_min_result ~engine now with
            | Error e ->
                die exit_solver_error "mmfair churn: step %d (%s): scratch solve: %s" (idx + 1)
                  label (Solver_error.to_string e)
            | Ok scratch ->
                Array.iter
                  (fun r ->
                    if not (agree (Allocation.rate incremental r) (Allocation.rate scratch r)) then begin
                      incr divergences;
                      Printf.eprintf
                        "mmfair churn: step %d (%s): receiver (%d,%d): incremental %.17g vs scratch %.17g\n%!"
                        (idx + 1) label r.Network.session r.Network.index
                        (Allocation.rate incremental r) (Allocation.rate scratch r)
                    end)
                  (Network.all_receivers now)
          end;
          [
            string_of_int (idx + 1);
            label;
            string_of_int stats.Batch.events;
            string_of_int stats.Batch.components;
            string_of_int stats.Batch.component_sessions;
            string_of_int stats.Batch.component_receivers;
            Printf.sprintf "%.2f" stats.Batch.reuse_fraction;
            string_of_int stats.Batch.solves;
            (if stats.Batch.full_solve then "full" else "incremental");
          ])
        steps
    in
    print_table ~csv
      (E.Table.make ~title:"Churn replay (incremental re-solve per step)"
         ~columns:[ "#"; "step"; "events"; "comps"; "comp sess"; "comp recv"; "reuse"; "solves"; "mode" ]
         rows);
    if rates then begin
      let alloc = Engine.allocation eng and now = Engine.network eng in
      (* Post-churn sessions/links line up with the parsed names: churn
         events never add or remove sessions or links. *)
      let rate_rows =
        Array.to_list
          (Array.map
             (fun (r : Network.receiver_id) ->
               [
                 Printf.sprintf "%s[%d]" parsed.Net_parser.session_names.(r.Network.session)
                   (r.Network.index + 1);
                 E.Table.cell_f (Allocation.rate alloc r);
               ])
             (Network.all_receivers now))
      in
      print_table ~csv (E.Table.make ~title:"Final receiver rates" ~columns:[ "receiver"; "rate" ] rate_rows)
    end;
    if not csv then
      Printf.printf
        "steps: %d, events: %d, coalesced away: %d, full solves: %d, mean reuse: %.2f, final epoch: %d\n"
        (List.length steps) !events_total !cancelled_total !full_solves
        (!reuse_sum /. float_of_int (Stdlib.max 1 (List.length steps)))
        (Engine.epoch eng);
    if verify && !divergences > 0 then
      die exit_solver_error "mmfair churn: %d receiver rate(s) diverged from the from-scratch solve"
        !divergences
    else if verify && not csv then print_endline "verify: every step matched the from-scratch solve"
  in
  let doc = "replay a churn trace through the incremental re-solve engine" in
  let man =
    [
      `S Manpage.s_description;
      `P "Replays join/leave/rho/cap events against a network description, re-solving only the \
          affected fairness component after each step (lib/dynamic).  A step is one event, or a \
          $(b,batch ... end) block coalesced into a single union-component re-solve; \
          $(b,--coalesce) re-chunks the whole trace into fixed-size batches instead.  The trace \
          format ($(b,#) comments allowed):";
      `Pre "join SESSION NODE [w=FLOAT]\nleave SESSION NODE\nrho SESSION FLOAT|inf\ncap LINK FLOAT\n\
            batch\n  EVENT...\nend";
      `P "Example (against $(b,mmfair example-net)):";
      `Pre Mmfair_workload.Churn_parser.example;
    ]
  in
  Cmd.v (Cmd.info "churn" ~doc ~man)
    Term.(const run $ tele_term $ net_file $ trace_file $ random_events $ engine $ verify $ rates
          $ domains $ coalesce $ seed_arg $ csv_flag)

(* `mmfair churnd`: the serving daemon.  Long-running: ingest .churn
   events from a pipe/FIFO/stdin or a Unix-domain socket, coalesce each
   wakeup's arrivals into one epoch, answer rate/epoch/metrics queries
   (lib/serve).  SIGINT/SIGTERM shut the loop down cleanly; the final
   metrics snapshot can be written to a file on the way out. *)
let churnd_cmd =
  let module Net_parser = Mmfair_workload.Net_parser in
  let module Daemon = Mmfair_serve.Daemon in
  let net_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Network description file.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Serve a Unix-domain socket at PATH (any number of concurrent clients; an \
                   existing file is replaced, the path is unlinked on shutdown).")
  in
  let input =
    Arg.(value & opt string "-"
         & info [ "input" ] ~docv:"FILE"
             ~doc:"Without --socket: the event stream to serve — a file or FIFO, or - for stdin \
                   (default).  Responses go to stdout.")
  in
  let engine_conv = Arg.enum [ ("auto", `Auto); ("linear", `Linear); ("bisection", `Bisection) ] in
  let engine =
    Arg.(value & opt engine_conv `Auto & info [ "engine" ] ~doc:"Water-filling engine: auto, linear or bisection.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N" ~doc:"Parallel domains for each epoch's component solves.")
  in
  let retain =
    Arg.(value & opt int 8 & info [ "retain" ] ~docv:"N" ~doc:"Recent epochs kept queryable in the store.")
  in
  let max_batch =
    Arg.(value & opt int 256
         & info [ "max-batch" ] ~docv:"N" ~doc:"Most events one coalesced epoch may apply.")
  in
  let ack =
    Arg.(value & flag & info [ "ack" ] ~doc:"Answer 'ok epoch N' for every accepted ingestion line.")
  in
  let poll =
    Arg.(value & opt float 0.05
         & info [ "poll-interval" ] ~docv:"SECONDS" ~doc:"Idle wakeup period (stop-flag polling).")
  in
  let write_timeout =
    Arg.(value & opt float 5.0
         & info [ "write-timeout" ] ~docv:"SECONDS"
             ~doc:"Drop a socket client whose full send buffer stalls a response write this long.")
  in
  let snapshot_out =
    Arg.(value & opt (some string) None
         & info [ "snapshot-out" ] ~docv:"FILE"
             ~doc:"Write the final metrics registry snapshot (JSON) to FILE on shutdown.")
  in
  let sample_interval =
    Arg.(value & opt float 1.0
         & info [ "sample-interval" ] ~docv:"SECONDS"
             ~doc:"Time-series sampler cadence; 0 disables sampling (and the series query).")
  in
  let series_out =
    Arg.(value & opt (some string) None
         & info [ "series-out" ] ~docv:"FILE"
             ~doc:"Append every sampler tick to FILE as mmfair.series/v1 JSONL (one header line \
                   per daemon start, one line per tick, flushed per line).")
  in
  let series_capacity =
    Arg.(value & opt int 512
         & info [ "series-capacity" ] ~docv:"N"
             ~doc:"Windows retained per in-memory series before downsampling halves them.")
  in
  let run tele net_file socket input engine domains retain max_batch ack poll write_timeout
      snapshot_out sample_interval series_out series_capacity =
    Telemetry.wrap tele @@ fun () ->
    if domains < 1 then die exit_invalid_input "mmfair churnd: --domains wants a positive count";
    if max_batch < 1 then die exit_invalid_input "mmfair churnd: --max-batch wants a positive count";
    if poll <= 0.0 then die exit_invalid_input "mmfair churnd: --poll-interval wants a positive duration";
    if write_timeout <= 0.0 then
      die exit_invalid_input "mmfair churnd: --write-timeout wants a positive duration";
    if series_capacity < 2 then
      die exit_invalid_input "mmfair churnd: --series-capacity wants at least 2 windows";
    let parsed = Net_parser.parse_file net_file in
    let config =
      { Mmfair_serve.Daemon.engine; domains; retain; max_batch; ack; poll_interval = poll;
        write_timeout; sample_interval; series_capacity; series_out }
    in
    let daemon =
      match Daemon.create ~config parsed with
      | Ok d -> d
      | Error e -> die exit_solver_error "mmfair churnd: initial solve: %s" (Solver_error.to_string e)
    in
    let write_snapshot () =
      match snapshot_out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (Mmfair_obs.Json.to_string (Daemon.snapshot daemon));
              output_char oc '\n')
    in
    (* The snapshot is the daemon's last word: written after the serve
       loop returns (EOF, quit, or SIGINT/SIGTERM via the stop flag) —
       and the engine's shared domain pool tears down later still, at
       its module-init at_exit hook. *)
    Fun.protect ~finally:write_snapshot @@ fun () ->
    match socket with
    | Some path -> Daemon.serve_socket daemon ~path
    | None ->
        let input_fd = if input = "-" then Unix.stdin else Unix.openfile input [ Unix.O_RDONLY ] 0 in
        Fun.protect
          ~finally:(fun () -> if input <> "-" then try Unix.close input_fd with Unix.Unix_error _ -> ())
          (fun () -> Daemon.serve_fd daemon ~input:input_fd ~output:Unix.stdout)
  in
  let doc = "serve churn events and rate queries from a pipe or Unix-domain socket" in
  let man =
    [
      `S Manpage.s_description;
      `P "A long-running loop around the incremental engine of $(b,mmfair churn): events arriving \
          between wakeups coalesce into one epoch (one union-component re-solve per burst), rate \
          and epoch queries flush first so answers are never stale, and malformed lines are \
          rejected with their line number without killing the loop.  The line protocol is the \
          .churn grammar plus queries:";
      `Pre "rate SESSION NODE\nrates\nepoch\nmetrics [json|prom]\nstats\nseries METRIC [WINDOW]\nquit";
      `P "SIGINT/SIGTERM finish the loop cleanly (flush, snapshot, restore signal dispositions); \
          SIGPIPE is ignored while serving.  A sampler walks the metrics registry every \
          $(b,--sample-interval) seconds into fixed-capacity in-memory time series (queryable \
          live via $(b,series), renderable via $(b,mmfair watch)) and, with $(b,--series-out), \
          appends each tick to a JSONL file for offline plotting.  Pair with \
          $(b,mmfair churnd-load) for soak testing.";
    ]
  in
  Cmd.v (Cmd.info "churnd" ~doc ~man)
    Term.(const run $ tele_term $ net_file $ socket $ input $ engine $ domains $ retain $ max_batch
          $ ack $ poll $ write_timeout $ snapshot_out $ sample_interval $ series_out
          $ series_capacity)

(* `mmfair churnd-load`: load generator and soak harness for churnd.
   Generates a seeded Churn_gen trace; either prints it (pipe mode) or
   drives a live daemon over its socket, optionally verifying the
   daemon's final rates against an offline replay of the same trace. *)
let churnd_load_cmd =
  let module Net_parser = Mmfair_workload.Net_parser in
  let module Churn_parser = Mmfair_workload.Churn_parser in
  let module Churn_gen = Mmfair_workload.Churn_gen in
  let module Engine = Mmfair_dynamic.Engine in
  let module Line_reader = Mmfair_serve.Line_reader in
  let net_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Network description file.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Connect to a running churnd at PATH and stream the trace; without this, print \
                   the trace to stdout (pipe it to churnd --input -).")
  in
  let events =
    Arg.(value & opt int 200 & info [ "events" ] ~docv:"N" ~doc:"Trace length to generate.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"After streaming, query the daemon's final rates and cross-check them against \
                   an offline replay of the same trace (relative 1e-9).  Needs --socket.")
  in
  let connect_timeout =
    Arg.(value & opt float 5.0
         & info [ "connect-timeout" ] ~docv:"SECONDS"
             ~doc:"How long to retry connecting while the daemon boots.")
  in
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"Stream line by line, time each ingestion's ack round-trip, and print \
                   client-side end-to-end latency quantiles (p50/p90/p99/max) at the end.  \
                   Needs --socket and a daemon running with --ack.")
  in
  let poisson =
    Arg.(value & opt (some float) None
         & info [ "poisson" ] ~docv:"RATE"
             ~doc:"Open-loop mode: stamp the trace with seeded Poisson arrival instants at RATE \
                   events per second and pace the stream in real time accordingly, instead of \
                   pushing as fast as the socket accepts.  Needs --socket.")
  in
  let run tele net_file socket events verify connect_timeout report poisson seed =
    Telemetry.wrap tele @@ fun () ->
    if events < 0 then die exit_invalid_input "mmfair churnd-load: --events must be non-negative";
    if verify && socket = None then
      die exit_invalid_input "mmfair churnd-load: --verify needs --socket (a live daemon to ask)";
    if report && socket = None then
      die exit_invalid_input "mmfair churnd-load: --report needs --socket (acks to time)";
    if poisson <> None && socket = None then
      die exit_invalid_input "mmfair churnd-load: --poisson needs --socket (a stream to pace)";
    (match poisson with
    | Some r when not (Float.is_finite r && r > 0.0) ->
        die exit_invalid_input "mmfair churnd-load: --poisson rate must be finite and positive"
    | _ -> ());
    let parsed = Net_parser.parse_file net_file in
    let net = parsed.Net_parser.net in
    let rng = Mmfair_prng.Xoshiro.create ~seed () in
    let cfg = { Churn_gen.default with Churn_gen.events } in
    let times, trace =
      match poisson with
      | None -> ([||], Churn_gen.generate ~rng net cfg)
      | Some rate ->
          let timed = Churn_gen.generate_timed ~rng net cfg ~rate in
          (Array.of_list (List.map fst timed), List.map snd timed)
    in
    let rendered = Churn_parser.render ~names:parsed trace in
    match socket with
    | None -> print_string rendered
    | Some path ->
        let deadline = Mmfair_obs.Clock.now_s () +. connect_timeout in
        let rec connect () =
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () -> fd
          | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
            when Mmfair_obs.Clock.now_s () < deadline ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Unix.sleepf 0.05;
              connect ()
          | exception Unix.Unix_error (err, _, _) ->
              die exit_invalid_input "mmfair churnd-load: connect %s: %s" path (Unix.error_message err)
        in
        let fd = connect () in
        (* A dead daemon must surface as EPIPE on our own write (and a
           clean diagnostic), not a fatal SIGPIPE. *)
        (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
        Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        let reader = Line_reader.of_fd fd in
        (* --report bookkeeping: each completed ingestion item (a lone
           event line, or a whole batch block at its [end]) pushes its
           send instant; each ack/err response pops one.  The daemon
           answers items in submission order, so FIFO matching gives
           honest per-item round-trips — including the coalescing
           delay, which IS part of end-to-end latency. *)
        let pending_sends : int64 Queue.t = Queue.create () in
        let latencies = ref [] in
        let note_response l =
          if
            report
            && (String.starts_with ~prefix:"ok " l || String.starts_with ~prefix:"err " l)
          then
            match Queue.take_opt pending_sends with
            | Some t0 -> latencies := Mmfair_obs.Clock.since_s t0 :: !latencies
            | None -> ()
        in
        (* Consume whatever response lines the daemon has already sent
           (--ack oks, rejection errs) without blocking.  Interleaved
           with the send below: against an --ack daemon, per-event
           replies would otherwise fill both socket buffers and
           deadlock the pair once the trace outgrows them. *)
        let drain_ready () =
          let rec go () =
            match Unix.select [ fd ] [] [] 0.0 with
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
                match Line_reader.refill reader with
                | `Eof -> ()
                | `Data ->
                    let rec eat () =
                      match Line_reader.pending_line reader with
                      | None -> ()
                      | Some l ->
                          note_response l;
                          if String.starts_with ~prefix:"err " l then
                            Printf.eprintf "mmfair churnd-load: daemon: %s\n%!" l;
                          eat ()
                    in
                    eat ();
                    go ())
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          in
          go ()
        in
        let send s =
          let b = Bytes.of_string s in
          let n = Bytes.length b in
          let rec go pos =
            if pos < n then begin
              drain_ready ();
              match Unix.write fd b pos (Stdlib.min 4096 (n - pos)) with
              | written -> go (pos + written)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
              | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                  die exit_invalid_input
                    "mmfair churnd-load: connection to %s closed while streaming" path
            end
          in
          go 0
        in
        if not report && poisson = None then send rendered
        else begin
          (* Line-at-a-time so each item's send instant is sharp.  A
             batch block is one ingestion item: its clock starts at the
             [end] line that completes it. *)
          let in_batch = ref false in
          let next_time = ref 0 in
          let t0 = Mmfair_obs.Clock.now_s () in
          (* Open-loop pacing: hold each event line back until its
             Poisson instant, draining daemon responses while waiting
             so neither socket buffer can fill up and deadlock us. *)
          let rec pace until =
            let now = Mmfair_obs.Clock.now_s () in
            if now < until then begin
              drain_ready ();
              Unix.sleepf (Float.min 0.05 (until -. now));
              pace until
            end
          in
          List.iter
            (fun line ->
              let body =
                match String.index_opt line '#' with
                | Some i -> String.sub line 0 i
                | None -> line
              in
              let kind =
                match String.trim body with
                | "" -> `Blank
                | "batch" -> `Batch
                | "end" -> `End
                | _ -> `Event
              in
              (if kind = `Event && poisson <> None && !next_time < Array.length times then begin
                 pace (t0 +. times.(!next_time));
                 incr next_time
               end);
              send (line ^ "\n");
              if report then
                match kind with
                | `Blank -> ()
                | `Batch -> in_batch := true
                | `End ->
                    in_batch := false;
                    Queue.add (Mmfair_obs.Clock.now_ns ()) pending_sends
                | `Event ->
                    if not !in_batch then Queue.add (Mmfair_obs.Clock.now_ns ()) pending_sends)
            (match String.split_on_char '\n' rendered with
            | lines -> (
                (* render ends with a newline: drop the empty tail. *)
                match List.rev lines with "" :: rest -> List.rev rest | _ -> lines))
        end;
        let read_line what =
          match Line_reader.next_line reader with
          | Some l -> l
          | None -> die exit_invalid_input "mmfair churnd-load: connection closed waiting for %s" what
        in
        (* Per-ingestion responses (--ack oks, errs) ride ahead of a
           query's answer on the same stream; skip past them. *)
        let rec read_answer what =
          let l = read_line what in
          if String.starts_with ~prefix:"ok " l then begin
            note_response l;
            read_answer what
          end
          else if String.starts_with ~prefix:"err " l then begin
            note_response l;
            Printf.eprintf "mmfair churnd-load: daemon: %s\n%!" l;
            read_answer what
          end
          else l
        in
        let mismatches = ref 0 in
        if verify then begin
          send "rates\n";
          let header = read_answer "rates header" in
          let k, daemon_epoch =
            match String.split_on_char ' ' header with
            | [ "rates"; k; "epoch"; e ] -> (int_of_string k, int_of_string e)
            | _ -> die exit_invalid_input "mmfair churnd-load: unexpected rates header %S" header
          in
          let daemon_rates = Hashtbl.create k in
          for _ = 1 to k do
            match String.split_on_char ' ' (read_line "a rates row") with
            | [ s; n; r ] -> Hashtbl.replace daemon_rates (s, n) (float_of_string r)
            | row -> die exit_invalid_input "mmfair churnd-load: unexpected rates row %S" (String.concat " " row)
          done;
          (* Offline replay of the identical trace: the daemon's epoch
             chunking is arbitrary, but max-min fairness depends only
             on the final network, so rates must agree within 1e-9. *)
          let offline =
            match Engine.create_result net with
            | Ok eng -> eng
            | Error e -> die exit_solver_error "mmfair churnd-load: offline replay: %s" (Solver_error.to_string e)
          in
          List.iter
            (fun ev ->
              match Engine.apply_result offline ev with
              | Ok _ -> ()
              | Error e -> die exit_solver_error "mmfair churnd-load: offline replay: %s" (Solver_error.to_string e))
            trace;
          let agree a b =
            Float.abs (a -. b) <= 1e-9 *. Stdlib.max 1.0 (Stdlib.max (Float.abs a) (Float.abs b))
          in
          let now = Engine.network offline and alloc = Engine.allocation offline in
          let offline_receivers = Network.all_receivers now in
          if Array.length offline_receivers <> k then begin
            incr mismatches;
            Printf.eprintf "mmfair churnd-load: daemon served %d receivers, offline replay has %d\n%!"
              k (Array.length offline_receivers)
          end;
          Array.iter
            (fun (r : Network.receiver_id) ->
              let spec = Network.session_spec now r.Network.session in
              let key =
                ( parsed.Net_parser.session_names.(r.Network.session),
                  parsed.Net_parser.node_names.(spec.Network.receivers.(r.Network.index)) )
              in
              let expected = Allocation.rate alloc r in
              match Hashtbl.find_opt daemon_rates key with
              | Some got when agree got expected -> ()
              | Some got ->
                  incr mismatches;
                  Printf.eprintf "mmfair churnd-load: %s %s: daemon %.17g vs offline %.17g\n%!"
                    (fst key) (snd key) got expected
              | None ->
                  incr mismatches;
                  Printf.eprintf "mmfair churnd-load: daemon reported no rate for %s %s\n%!"
                    (fst key) (snd key))
            offline_receivers;
          Printf.printf "verify: %d receiver rates checked against offline replay (epoch %d)\n"
            (Array.length offline_receivers) daemon_epoch
        end;
        send "quit\n";
        (* Drain until the daemon says bye, so the socket closes after
           every response (acks included) has been delivered. *)
        let rec drain () =
          match Line_reader.next_line reader with
          | Some "bye" | None -> ()
          | Some l ->
              note_response l;
              drain ()
        in
        drain ();
        Printf.printf "sent %d events to %s\n" (List.length trace) path;
        if report then begin
          match List.sort compare !latencies with
          | [] ->
              Printf.eprintf
                "mmfair churnd-load: --report saw no acks — is the daemon running with --ack?\n%!"
          | sorted ->
              let arr = Array.of_list sorted in
              let n = Array.length arr in
              (* Exact nearest-rank quantiles: every round-trip was kept. *)
              let q p =
                arr.(Stdlib.min (n - 1)
                       (Stdlib.max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))
              in
              Printf.printf
                "report: acks=%d rtt-ms p50=%.3f p90=%.3f p99=%.3f max=%.3f\n" n
                (1e3 *. q 0.50) (1e3 *. q 0.90) (1e3 *. q 0.99) (1e3 *. arr.(n - 1))
        end;
        if !mismatches > 0 then
          die exit_solver_error "mmfair churnd-load: %d receiver rate(s) diverged from the offline replay"
            !mismatches
  in
  let doc = "generate churn load for a running churnd (soak harness)" in
  let man =
    [
      `S Manpage.s_description;
      `P "Generates a seeded random churn trace (the same generator as $(b,mmfair churn --random)) \
          and either prints it for piping, or streams it into a live $(b,mmfair churnd) socket.  \
          With $(b,--verify), the daemon's final rates are fetched over the same connection and \
          cross-checked against an offline replay of the identical trace — the daemon's coalescing \
          must not change where the allocation lands (max-min fairness depends only on the final \
          network).  With $(b,--report) (against a daemon running with $(b,--ack)), every \
          ingestion's ack round-trip is timed and client-side end-to-end latency quantiles are \
          printed — so a soak reports both sides of the socket.  With $(b,--poisson RATE), the \
          stream is paced open-loop: each event is held back until its seeded Poisson arrival \
          instant (RATE events per second) instead of being pushed as fast as the socket \
          accepts — the arrival process is the same one the flow-level stability harness \
          ($(b,mmfair stability)) draws from.";
    ]
  in
  Cmd.v (Cmd.info "churnd-load" ~doc ~man)
    Term.(const run $ tele_term $ net_file $ socket $ events $ verify $ connect_timeout $ report
          $ poisson $ seed_arg)

(* `mmfair watch`: live terminal dashboard over a running churnd.
   Polls the daemon's socket with the `stats` verb and renders a
   refreshing summary — rates are computed client-side from successive
   snapshots (the daemon timestamps each with its monotonic clock). *)
let watch_cmd =
  let module Line_reader = Mmfair_serve.Line_reader in
  let module Json = Mmfair_obs.Json in
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"The running churnd's Unix-domain socket.")
  in
  let interval =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let count =
    Arg.(value & opt (some int) None
         & info [ "count" ] ~docv:"N"
             ~doc:"Render N frames then exit (default: until interrupted or the daemon goes away).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Print one snapshot without clearing the screen (implies --count 1).")
  in
  let connect_timeout =
    Arg.(value & opt float 5.0
         & info [ "connect-timeout" ] ~docv:"SECONDS"
             ~doc:"How long to retry connecting while the daemon boots.")
  in
  let run tele socket interval count once connect_timeout =
    Telemetry.wrap tele @@ fun () ->
    if interval <= 0.0 then die exit_invalid_input "mmfair watch: --interval wants a positive duration";
    let frames = if once then Some 1 else count in
    (match frames with
    | Some n when n < 1 -> die exit_invalid_input "mmfair watch: --count wants a positive count"
    | _ -> ());
    let deadline = Mmfair_obs.Clock.now_s () +. connect_timeout in
    let rec connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when Mmfair_obs.Clock.now_s () < deadline ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.05;
          connect ()
      | exception Unix.Unix_error (err, _, _) ->
          die exit_invalid_input "mmfair watch: connect %s: %s" socket (Unix.error_message err)
    in
    let fd = connect () in
    (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let reader = Line_reader.of_fd fd in
    let send s =
      match Unix.write_substring fd s 0 (String.length s) with
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          die exit_invalid_input "mmfair watch: daemon at %s went away" socket
    in
    let num j k = match Json.member k j with Some (Json.Num v) -> Some v | _ -> None in
    let sub j k1 k2 =
      match Json.member k1 j with Some o -> (match Json.member k2 o with Some (Json.Num v) -> Some v | _ -> None) | None -> None
    in
    let fmt_ms = function None -> "    n/a" | Some s -> Printf.sprintf "%7.3f" (1e3 *. s) in
    let fmt_rate = function None -> "     n/a" | Some r -> Printf.sprintf "%8.1f" r in
    let prev = ref None in
    let render stats =
      let b = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      let t = num stats "t" in
      let rate key =
        match (!prev, t) with
        | Some (pt, pstats), Some now when now > pt -> (
            match (num stats key, num pstats key) with
            | Some v, Some pv -> Some ((v -. pv) /. (now -. pt))
            | _ -> None)
        | _ -> None
      in
      let i key = match num stats key with Some v -> Printf.sprintf "%.0f" v | None -> "n/a" in
      line "mmfair watch — %s" socket;
      line "  epoch %s   epochs/s %s   ingest/s %s" (i "epoch") (fmt_rate (rate "epochs"))
        (fmt_rate (rate "ingested"));
      line "  totals: ingested %s  rejected %s  epochs %s  queries %s  connections %s"
        (i "ingested") (i "rejected") (i "epochs") (i "queries") (i "connections");
      line "  solve ms:     p50 %s  p90 %s  p99 %s  max %s" (fmt_ms (sub stats "solve" "p50"))
        (fmt_ms (sub stats "solve" "p90")) (fmt_ms (sub stats "solve" "p99"))
        (fmt_ms (sub stats "solve" "max"));
      line "  staleness ms: p50 %s  p90 %s  p99 %s  hwm %s" (fmt_ms (sub stats "staleness" "p50"))
        (fmt_ms (sub stats "staleness" "p90")) (fmt_ms (sub stats "staleness" "p99"))
        (fmt_ms (num stats "staleness_max"));
      let jain = match num stats "jain" with Some v -> Printf.sprintf "%.4f" v | None -> "n/a" in
      let util =
        match num stats "pool_utilization" with
        | Some v -> Printf.sprintf "%.0f%%" (100.0 *. v)
        | None -> "n/a"
      in
      line "  fairness jain %s   pool utilization %s" jain util;
      line "  gc: minor %s  major %s  heap %s words" (sub stats "gc" "minor" |> function Some v -> Printf.sprintf "%.0f" v | None -> "n/a")
        (sub stats "gc" "major" |> function Some v -> Printf.sprintf "%.0f" v | None -> "n/a")
        (sub stats "gc" "heap_words" |> function Some v -> Printf.sprintf "%.0f" v | None -> "n/a");
      (match t with Some now -> prev := Some (now, stats) | None -> ());
      Buffer.contents b
    in
    let frame k =
      send "stats\n";
      let rec answer () =
        match Line_reader.next_line reader with
        | None -> die exit_invalid_input "mmfair watch: daemon at %s closed the connection" socket
        | Some l when String.starts_with ~prefix:"stats " l ->
            String.sub l 6 (String.length l - 6)
        | Some _ -> answer () (* unrelated chatter (acks to others never reach us; be safe) *)
      in
      let payload = answer () in
      let stats =
        match Json.parse payload with
        | j -> j
        | exception Json.Bad msg ->
            die exit_invalid_input "mmfair watch: malformed stats payload (%s)" msg
      in
      let text = render stats in
      if once then print_string text
      else begin
        (* Clear + home, then the frame: a cheap full-redraw dashboard. *)
        print_string "\027[2J\027[H";
        print_string text;
        Printf.printf "  [frame %d, every %gs — Ctrl-C to stop]\n" k interval
      end;
      Stdlib.flush Stdlib.stdout
    in
    let rec loop k =
      frame k;
      let continue_ = match frames with Some n -> k < n | None -> true in
      if continue_ then begin
        Unix.sleepf interval;
        loop (k + 1)
      end
    in
    loop 1
  in
  let doc = "live terminal dashboard over a running churnd (polls the stats verb)" in
  let man =
    [
      `S Manpage.s_description;
      `P "Connects to a $(b,mmfair churnd --socket) daemon, polls its $(b,stats) protocol verb \
          every $(b,--interval) seconds, and renders a refreshing dashboard: epochs/s and \
          ingest/s (computed from successive snapshots), solve and staleness latency quantiles \
          (from the daemon's log-bucketed histograms), the Jain fairness index of the current \
          allocation, domain-pool utilization, and GC counters.  Use $(b,--once) in scripts to \
          print a single parseable snapshot.";
    ]
  in
  Cmd.v (Cmd.info "watch" ~doc ~man)
    Term.(const run $ tele_term $ socket $ interval $ count $ once $ connect_timeout)

let single_rate_cmd =
  let grid = Arg.(value & opt int 12 & info [ "grid" ] ~docv:"N" ~doc:"Candidate rates to sweep.") in
  let run tele grid csv =
    Telemetry.wrap tele @@ fun () ->
    let o = E.Single_rate_study.run_figure2 ~grid () in
    print_table ~csv o.E.Single_rate_study.table
  in
  Cmd.v
    (Cmd.info "single-rate" ~doc:"related-work [6]: pick a constrained session's single rate by inter-receiver fairness")
    Term.(const run $ tele_term $ grid $ csv_flag)

let convergence_cmd =
  let loss = Arg.(value & opt float 0.02 & info [ "loss" ] ~docv:"P" ~doc:"Fanout-link loss rate.") in
  let run tele loss seed csv =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv (E.Convergence.to_table (E.Convergence.run ~loss ~seed ()))
  in
  Cmd.v
    (Cmd.info "convergence" ~doc:"extension: protocol climb time, exact transient vs simulation")
    Term.(const run $ tele_term $ loss $ seed_arg $ csv_flag)

let closedloop_cmd =
  let run tele =
    Telemetry.wrap tele @@ fun () ->
    List.iter (fun o -> E.Table.print o.E.Closed_loop.table) (E.Closed_loop.run ())
  in
  Cmd.v
    (Cmd.info "closed-loop" ~doc:"validation: protocols vs the allocator's fair rates on real queues")
    Term.(const run $ tele_term)

let ecn_cmd =
  let run tele seed csv =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv (E.Ecn_study.to_table (E.Ecn_study.run ~seed ()))
  in
  Cmd.v (Cmd.info "ecn" ~doc:"extension: ECN marking vs drop-tail congestion signalling")
    Term.(const run $ tele_term $ seed_arg $ csv_flag)

let compete_cmd =
  let run tele seed csv =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv (E.Competition.to_table (E.Competition.run ~seed ()))
  in
  Cmd.v
    (Cmd.info "compete" ~doc:"extension: two sessions on one bottleneck (Section-3 nonexistence, live)")
    Term.(const run $ tele_term $ seed_arg $ csv_flag)

let tcpfriendly_cmd =
  let run tele seed csv =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv (E.Tcp_friendly.to_table (E.Tcp_friendly.run ~seed ()))
  in
  Cmd.v
    (Cmd.info "tcpfriendly" ~doc:"extension: layered multicast vs an AIMD (TCP-like) flow")
    Term.(const run $ tele_term $ seed_arg $ csv_flag)

let claims_cmd =
  let loss = Arg.(value & opt float 0.03 & info [ "loss" ] ~docv:"P" ~doc:"Mean fanout loss rate.") in
  let run tele loss seed csv =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv
      (E.Scaling_claims.scaling_table (E.Scaling_claims.receiver_scaling ~seed ~independent_loss:loss ()));
    print_table ~csv
      (E.Scaling_claims.hetero_table (E.Scaling_claims.heterogeneous_loss ~seed ~mean_loss:loss ()))
  in
  Cmd.v
    (Cmd.info "claims" ~doc:"verify Section 4's side claims: receiver-count saturation; equal loss is worst")
    Term.(const run $ tele_term $ loss $ seed_arg $ csv_flag)

let list_cmd =
  let run tele csv = Telemetry.wrap tele @@ fun () -> print_table ~csv (E.Index.to_table ()) in
  Cmd.v (Cmd.info "list" ~doc:"list every reproduced experiment and the command that regenerates it")
    Term.(const run $ tele_term $ csv_flag)

let membership_cmd =
  let run tele seed csv =
    Telemetry.wrap tele @@ fun () ->
    print_table ~csv (E.Membership_study.to_table (E.Membership_study.run ~seed ()))
  in
  Cmd.v
    (Cmd.info "membership" ~doc:"extension: IGMP leave timeouts vs redundancy, closed loop")
    Term.(const run $ tele_term $ seed_arg $ csv_flag)

let all_cmd =
  let run tele seed =
    Telemetry.wrap tele @@ fun () ->
    let o = E.Fig_examples.run_figure1 () in
    E.Table.print o.E.Fig_examples.table;
    let o = E.Fig_examples.run_figure2 ~session1_type:Network.Single_rate () in
    E.Table.print o.E.Fig_examples.table;
    let o = E.Fig_examples.run_figure2 ~session1_type:Network.Multi_rate () in
    E.Table.print o.E.Fig_examples.table;
    let a = E.Fig_examples.run_figure3a () in
    E.Table.print a.E.Fig_examples.table;
    let b = E.Fig_examples.run_figure3b () in
    E.Table.print b.E.Fig_examples.table;
    let o = E.Fig_examples.run_figure4 () in
    E.Table.print o.E.Fig_examples.table;
    let n = E.Nonexistence.run () in
    E.Table.print n.E.Nonexistence.table;
    E.Table.print (E.Fig5_random_joins.to_table (E.Fig5_random_joins.run ~seed ()));
    E.Table.print (E.Fig6_fair_rate.to_table (E.Fig6_fair_rate.run ()));
    E.Table.print (E.Replacement.run_figure2 ()).E.Replacement.table;
    List.iter
      (fun grid -> E.Table.print (E.Markov_redundancy.to_table grid))
      (E.Markov_redundancy.run ~shared_loss:0.0001 ());
    List.iter
      (fun shared ->
        let curves = E.Fig8_protocols.run ~shared_loss:shared ~seed () in
        E.Table.print (E.Fig8_protocols.to_table ~shared_loss:shared curves))
      [ 0.0001; 0.05 ];
    E.Table.print (E.Extensions.latency_table (E.Extensions.leave_latency ~seed ~independent_loss:0.03 ()));
    E.Table.print (E.Extensions.priority_table (E.Extensions.priority_dropping ~seed ~independent_loss:0.03 ()));
    E.Table.print
      (E.Extensions.layers_table ~receivers:50 ~rate:0.35
         (E.Extensions.layers_vs_redundancy ~receivers:50 ~rate:0.35 ()));
    E.Table.print (E.Extensions.tcp_fairness ~rtts:[| 0.01; 0.02; 0.05; 0.1 |] ()).E.Extensions.table;
    E.Table.print (E.Extensions.churn ~seed ~sessions:4 ()).E.Extensions.table;
    E.Table.print (E.Convergence.to_table (E.Convergence.run ~seed ()));
    E.Table.print (E.Single_rate_study.run_figure2 ()).E.Single_rate_study.table;
    List.iter (fun o -> E.Table.print o.E.Closed_loop.table) (E.Closed_loop.run ());
    E.Table.print (E.Ecn_study.to_table (E.Ecn_study.run ~seed ()));
    E.Table.print (E.Competition.to_table (E.Competition.run ~seed ()));
    E.Table.print (E.Tcp_friendly.to_table (E.Tcp_friendly.run ~seed ()));
    E.Table.print
      (E.Scaling_claims.scaling_table
         (E.Scaling_claims.receiver_scaling ~seed ~packets:20_000 ~independent_loss:0.03 ()));
    E.Table.print
      (E.Scaling_claims.hetero_table
         (E.Scaling_claims.heterogeneous_loss ~seed ~receivers:60 ~packets:20_000 ~mean_loss:0.03 ()));
    E.Table.print (E.Membership_study.to_table (E.Membership_study.run ~seed ~duration:90.0 ()))
  in
  Cmd.v (Cmd.info "all" ~doc:"run every experiment at quick scale (the EXPERIMENTS.md sweep)")
    Term.(const run $ tele_term $ seed_arg)

(* `mmfair stability`: flow-level stochastic workload runs probing the
   Bramson stability boundary — sessions arrive by a Poisson process,
   are served at their max-min rates, and depart when their sampled
   workload drains.  Single run or a rho sweep; table/CSV/JSON out. *)
let stability_cmd =
  let module Size = Mmfair_flow.Size in
  let module Scenario = Mmfair_flow.Scenario in
  let module Sim = Mmfair_flow.Sim in
  let module Stability = Mmfair_flow.Stability in
  let module LH = Mmfair_stats.Log_histogram in
  let scenario_conv = Arg.enum [ ("star", `Star); ("single", `Single) ] in
  let scenario =
    Arg.(value & opt scenario_conv `Star
         & info [ "scenario" ] ~docv:"KIND"
             ~doc:"Topology: $(b,star) (star-of-stars, one flow class per cluster trunk) or \
                   $(b,single) (one class on one link — M/M/1-PS with exponential workloads).")
  in
  let clusters =
    Arg.(value & opt int 8 & info [ "clusters" ] ~docv:"N" ~doc:"Clusters (classes) of the star scenario.")
  in
  let slots =
    Arg.(value & opt int 64
         & info [ "slots" ] ~docv:"N"
             ~doc:"Concurrent-flow capacity per class; arrivals beyond it count as blocked.")
  in
  let trunk_cap =
    Arg.(value & opt float 4.0 & info [ "trunk-cap" ] ~docv:"C" ~doc:"Per-cluster trunk capacity (star).")
  in
  let capacity =
    Arg.(value & opt float 1.0 & info [ "capacity" ] ~docv:"C" ~doc:"Link capacity (single).")
  in
  let workload =
    Arg.(value & opt string "exp:1"
         & info [ "workload" ] ~docv:"SPEC"
             ~doc:"Workload-size distribution: $(b,det:SIZE), $(b,exp:MEAN) or \
                   $(b,pareto:ALPHA,LO,HI).")
  in
  let load =
    Arg.(value & opt float 0.8
         & info [ "load" ] ~docv:"RHO"
             ~doc:"Target nominal load (max over links); arrival rates are scaled to hit it.")
  in
  let sweep =
    Arg.(value & opt (some string) None
         & info [ "sweep" ] ~docv:"R1,R2,.."
             ~doc:"Run once per comma-separated load instead of --load.")
  in
  let horizon =
    Arg.(value & opt float 100.0 & info [ "horizon" ] ~docv:"T" ~doc:"Virtual-time length of each run.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domain-pool size for each epoch's component solves (allocations are identical \
                   at every value).")
  in
  let engine_conv = Arg.enum [ ("auto", `Auto); ("linear", `Linear); ("bisection", `Bisection) ] in
  let engine =
    Arg.(value & opt engine_conv `Auto & info [ "engine" ] ~doc:"Water-filling engine: auto, linear or bisection.")
  in
  let pulses =
    Arg.(value & opt_all string []
         & info [ "pulse" ] ~docv:"T:N"
             ~doc:"Flash crowd: inject N simultaneous arrivals at virtual time T (repeatable).")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the runs as JSON (schema mmfair.stability/v1).")
  in
  let series_out =
    Arg.(value & opt (some string) None
         & info [ "series-out" ] ~docv:"FILE"
             ~doc:"Write the last run's population time series as JSONL (schema mmfair.series/v1).")
  in
  let expect_conv =
    Arg.enum [ ("stable", Stability.Stable); ("divergent", Stability.Divergent) ]
  in
  let expect =
    Arg.(value & opt (some expect_conv) None
         & info [ "expect" ] ~docv:"VERDICT"
             ~doc:"Exit non-zero unless every run's verdict matches (CI smoke mode).")
  in
  let run tele scenario clusters slots trunk_cap capacity workload load sweep horizon domains engine
      pulses json_out series_out expect csv seed =
    Telemetry.wrap tele @@ fun () ->
    let size = Size.of_string workload in
    let pulses =
      List.map
        (fun s ->
          match String.index_opt s ':' with
          | Some i -> (
              let t = String.sub s 0 i and n = String.sub s (i + 1) (String.length s - i - 1) in
              match (float_of_string_opt t, int_of_string_opt n) with
              | Some t, Some n -> (t, n)
              | _ -> die exit_invalid_input "mmfair stability: malformed --pulse %S (want T:N)" s)
          | None -> die exit_invalid_input "mmfair stability: malformed --pulse %S (want T:N)" s)
        pulses
    in
    let loads =
      match sweep with
      | None -> [ load ]
      | Some s ->
          List.map
            (fun l ->
              match float_of_string_opt (String.trim l) with
              | Some f -> f
              | None -> die exit_invalid_input "mmfair stability: malformed --sweep entry %S" l)
            (String.split_on_char ',' s)
    in
    let build target =
      let base =
        match scenario with
        | `Star ->
            Scenario.star_of_stars ~clusters ~trunk_capacity:trunk_cap ~slots ~size ~rate:1.0 ()
        | `Single -> Scenario.single_link ~capacity ~slots ~size ~rate:1.0 ()
      in
      Scenario.scale_to_load base ~load:target
    in
    let config = { Sim.default with Sim.horizon; seed; engine; domains; pulses } in
    let runs =
      List.map
        (fun target ->
          let r = Sim.run ~config (build target) in
          (target, r, Stability.assess r))
        loads
    in
    let rows =
      List.map
        (fun (target, r, (rep : Stability.report)) ->
          [
            E.Table.cell_f target;
            Stability.verdict_to_string rep.Stability.verdict;
            string_of_int r.Sim.arrivals;
            string_of_int r.Sim.departures;
            string_of_int r.Sim.blocked;
            string_of_int r.Sim.max_population;
            E.Table.cell_f r.Sim.time_avg_population;
            E.Table.cell_f rep.Stability.drift_per_time;
            E.Table.cell_f (LH.quantile r.Sim.sojourn 0.5);
            E.Table.cell_f (LH.quantile r.Sim.sojourn 0.99);
            E.Table.cell_f (LH.quantile r.Sim.flow_rate 0.5);
            string_of_int r.Sim.epochs;
          ])
        runs
    in
    print_table ~csv
      (E.Table.make ~title:"Flow-level stability (Poisson arrivals, max-min service)"
         ~columns:
           [ "load"; "verdict"; "arrivals"; "departures"; "blocked"; "max_pop"; "mean_pop";
             "drift/t"; "sojourn_p50"; "sojourn_p99"; "rate_p50"; "epochs" ]
         ~notes:
           [ "Stability theory: stable iff every link's nominal load < 1 (max-min service)." ]
         rows);
    (match json_out with
    | None -> ()
    | Some path ->
        let b = Buffer.create 4096 in
        let hist h =
          (* Quantiles and mean degrade to null while empty (JSON has
             no NaN), matching the metrics-registry convention. *)
          if LH.count h = 0 then
            "{\"count\":0,\"mean\":null,\"p50\":null,\"p90\":null,\"p99\":null,\"max\":null}"
          else
            Printf.sprintf
              "{\"count\":%d,\"mean\":%.12g,\"p50\":%.12g,\"p90\":%.12g,\"p99\":%.12g,\"max\":%.12g}"
              (LH.count h)
              (LH.sum h /. float_of_int (LH.count h))
              (LH.quantile h 0.5) (LH.quantile h 0.9) (LH.quantile h 0.99) (LH.max_value h)
        in
        Buffer.add_string b "{\"schema\":\"mmfair.stability/v1\",";
        Buffer.add_string b
          (Printf.sprintf
             "\"scenario\":%S,\"clusters\":%d,\"slots\":%d,\"workload\":%S,\"horizon\":%.12g,\"seed\":%Ld,\"domains\":%d,\"runs\":["
             (match scenario with `Star -> "star" | `Single -> "single")
             (match scenario with `Star -> clusters | `Single -> 1)
             slots (Size.to_string size) horizon seed domains);
        List.iteri
          (fun i (target, (r : Sim.result), (rep : Stability.report)) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf
                 "{\"load\":%.12g,\"verdict\":%S,\"arrivals\":%d,\"departures\":%d,\"blocked\":%d,\
                  \"pulse_arrivals\":%d,\"epochs\":%d,\"applied_events\":%d,\"final_population\":%d,\
                  \"max_population\":%d,\"time_avg_population\":%.12g,\"first_half_mean\":%.12g,\
                  \"second_half_mean\":%.12g,\"drift_per_time\":%.12g,\"regenerations\":%d,\
                  \"sojourn\":%s,\"flow_rate\":%s}"
                 target
                 (Stability.verdict_to_string rep.Stability.verdict)
                 r.Sim.arrivals r.Sim.departures r.Sim.blocked r.Sim.pulse_arrivals r.Sim.epochs
                 r.Sim.applied_events r.Sim.final_population r.Sim.max_population
                 r.Sim.time_avg_population r.Sim.first_half_mean r.Sim.second_half_mean
                 rep.Stability.drift_per_time r.Sim.regenerations (hist r.Sim.sojourn)
                 (hist r.Sim.flow_rate)))
          runs;
        Buffer.add_string b "]}\n";
        let oc = open_out path in
        output_string oc (Buffer.contents b);
        close_out oc);
    (match series_out with
    | None -> ()
    | Some path -> (
        match List.rev runs with
        | [] -> ()
        | (_, r, _) :: _ ->
            let oc = open_out path in
            output_string oc (Mmfair_obs.Timeseries.to_jsonl r.Sim.series);
            close_out oc));
    match expect with
    | None -> ()
    | Some want ->
        List.iter
          (fun (target, _, (rep : Stability.report)) ->
            if rep.Stability.verdict <> want then
              die 1 "mmfair stability: load %g: expected %s, observed %s (m1=%.3f m2=%.3f)" target
                (Stability.verdict_to_string want)
                (Stability.verdict_to_string rep.Stability.verdict)
                rep.Stability.first_half_mean rep.Stability.second_half_mean)
          runs
  in
  let doc = "flow-level stochastic stability runs (Poisson arrivals, departure on completion)" in
  let man =
    [
      `S Manpage.s_description;
      `P "Simulates flow-level session churn in virtual time: multicast sessions arrive by a \
          Poisson process, carry a sampled workload size, are served at their current max-min \
          fair rates through the incremental engine, and depart when their residual workload \
          drains.  Stability theory for bandwidth-sharing networks predicts the system is stable \
          exactly when every link's nominal load is below 1; this command probes that boundary \
          empirically, classifying each run as stable or divergent from the drift of the \
          time-averaged population.";
      `P "Examples:";
      `Pre "  mmfair stability --load 0.8 --horizon 200\n\
           \  mmfair stability --sweep 0.6,0.9,1.1 --workload pareto:1.5,0.1,100 --csv\n\
           \  mmfair stability --scenario single --load 1.3 --expect divergent";
    ]
  in
  Cmd.v (Cmd.info "stability" ~doc ~man)
    Term.(const run $ tele_term $ scenario $ clusters $ slots $ trunk_cap $ capacity $ workload
          $ load $ sweep $ horizon $ domains $ engine $ pulses $ json_out $ series_out $ expect
          $ csv_flag $ seed_arg)

let main_cmd =
  let doc = "reproduction of 'The Impact of Multicast Layering on Network Fairness' (SIGCOMM 1999)" in
  Cmd.group (Cmd.info "mmfair" ~version:"1.0.0" ~doc)
    [
      allocate_cmd; dot_cmd; example_net_cmd; topo_cmd; fig1_cmd; fig2_cmd; fig3_cmd; fig4_cmd; fig5_cmd; fig6_cmd;
      fig8_cmd; markov_cmd; nonexist_cmd; replace_cmd; latency_cmd; priority_cmd; layers_cmd;
      tcpfair_cmd; churn_cmd; churnd_cmd; churnd_load_cmd; watch_cmd; stability_cmd; session_churn_cmd; convergence_cmd; single_rate_cmd; closedloop_cmd; ecn_cmd;
      compete_cmd; tcpfriendly_cmd; claims_cmd; membership_cmd; list_cmd; all_cmd;
    ]

(* Malformed inputs and solver stalls must exit with a short diagnostic
   on stderr, not a raw backtrace (cmdliner's default catch prints the
   exception and exits 125). *)
let () =
  let code =
    try Cmd.eval ~catch:false main_cmd with
    | Solver_error.Error e ->
        Printf.eprintf "mmfair: solver error: %s\n%!" (Solver_error.to_string e);
        exit_solver_error
    | Mmfair_workload.Net_parser.Parse_error (line, msg) ->
        Printf.eprintf "mmfair: parse error (line %d): %s\n%!" line msg;
        exit_invalid_input
    | Mmfair_workload.Churn_parser.Parse_error (line, msg) ->
        Printf.eprintf "mmfair: churn parse error (line %d): %s\n%!" line msg;
        exit_invalid_input
    | Invalid_argument msg | Failure msg ->
        Printf.eprintf "mmfair: invalid input: %s\n%!" msg;
        exit_invalid_input
    | Sys_error msg ->
        Printf.eprintf "mmfair: %s\n%!" msg;
        exit_invalid_input
  in
  exit code
