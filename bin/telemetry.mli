(** Global [--metrics] / [--trace-out] flags for the mmfair CLI.

    Every subcommand composes {!term} into its cmdliner term and wraps
    its body in {!wrap}; with neither flag given, [wrap] is exactly the
    wrapped thunk (the probe sink stays {!Mmfair_obs.Sink.null}). *)

type t

val term : t Cmdliner.Term.t

val enabled : t -> bool
(** Whether either flag was given. *)

val wrap : t -> (unit -> 'a) -> 'a
(** [wrap t f] runs [f] with the requested exporters installed as the
    process-wide probe sink, finalizing (trace close, metrics output,
    one-line stderr summary) on return — and via [at_exit], so the CLI
    error paths that call [exit] directly still produce valid files. *)
