(* Global --metrics / --trace-out plumbing shared by every mmfair
   subcommand.  The flags install a probe sink for the duration of the
   command; finalization is hooked both on normal return and [at_exit],
   so the error paths that [exit 2]/[exit 3] still produce a valid
   trace file and a metrics summary. *)

open Cmdliner
module Obs = Mmfair_obs

type t = {
  metrics : string option;
      (* [Some ""] = bare [--metrics]: Prometheus text to stderr;
         [Some file] = JSON snapshot to [file]. *)
  trace_out : string option;
}

let term =
  let metrics =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Collect solver/simulator metrics.  Bare $(b,--metrics) prints a \
             Prometheus text exposition to stderr on exit; \
             $(b,--metrics)=$(docv) writes a JSON snapshot to $(docv) instead.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON trace of solver rounds, spans and \
             simulator activity to $(docv) (loadable in chrome://tracing or \
             Perfetto).")
  in
  let make metrics trace_out = { metrics; trace_out } in
  Term.(const make $ metrics $ trace_out)

let enabled t = t.metrics <> None || t.trace_out <> None

let wrap t f =
  if not (enabled t) then f ()
  else begin
    let registry = Obs.Registry.create () in
    let sinks = ref [ Obs.Registry.sink registry ] in
    let finalizers = ref [] in
    (* Prepend order is reversed at run time: trace close first, then
       the metrics output, then the one-line summary. *)
    (match t.trace_out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        let writer = Obs.Chrome_trace.create ~emit:(output_string oc) () in
        sinks := Obs.Chrome_trace.sink writer :: !sinks;
        finalizers :=
          (fun () ->
            Obs.Chrome_trace.close writer;
            close_out oc;
            Printf.eprintf "mmfair: trace: %d events -> %s\n%!"
              (Obs.Chrome_trace.event_count writer)
              file)
          :: !finalizers);
    (match t.metrics with
    | None -> ()
    | Some "" ->
        finalizers :=
          (fun () ->
            prerr_string (Obs.Registry.to_prometheus registry);
            flush stderr)
          :: !finalizers
    | Some file ->
        finalizers :=
          (fun () ->
            let oc = open_out file in
            output_string oc (Obs.Json.to_string (Obs.Registry.snapshot registry));
            output_char oc '\n';
            close_out oc;
            Printf.eprintf "mmfair: metrics snapshot -> %s\n%!" file)
          :: !finalizers);
    finalizers :=
      (fun () ->
        let c name = Obs.Registry.counter_value (Obs.Registry.counter registry name) in
        let sim =
          c "sim.events.scheduled.total" + c "sim.events.fired.total"
          + c "sim.events.dropped.total"
        in
        Printf.eprintf "mmfair: telemetry: %d solver rounds, %d sim events\n%!"
          (c "solver.rounds.total") sim)
      :: !finalizers;
    let finalized = ref false in
    let finalize () =
      if not !finalized then begin
        finalized := true;
        Obs.Probe.set Obs.Sink.null;
        List.iter (fun g -> g ()) (List.rev !finalizers)
      end
    in
    at_exit finalize;
    Obs.Probe.set (Obs.Sink.tee_all !sinks);
    Fun.protect ~finally:finalize f
  end
